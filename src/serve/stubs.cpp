#include "serve/stubs.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "crypto/rng.hpp"

namespace ede::serve {

StubTrace generate_stub_trace(const scan::Population& population,
                              const StubOptions& options) {
  StubTrace trace;
  trace.options = options;
  if (population.domains.empty() || options.queries == 0) return trace;

  // Zipf inverse-CDF table: cumulative weight of ranks [0, i].
  const std::size_t n = population.domains.size();
  std::vector<double> cumulative(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1),
                            options.zipf_exponent);
    cumulative[i] = total;
  }

  crypto::Xoshiro256 rng(options.seed);
  // Popularity must be independent of population order (the generator
  // places misconfigured categories first and healthy filler last, and a
  // front end's hot names are not disproportionately the broken ones):
  // a seeded Fisher-Yates permutation maps Zipf rank -> domain index.
  std::vector<std::uint32_t> rank_to_domain(n);
  for (std::size_t i = 0; i < n; ++i)
    rank_to_domain[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = n - 1; i > 0; --i)
    std::swap(rank_to_domain[i],
              rank_to_domain[rng.below(static_cast<std::uint64_t>(i) + 1)]);
  const auto sample_rank = [&]() -> std::size_t {
    const double u = rng.uniform() * total;
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
    return static_cast<std::size_t>(it - cumulative.begin());
  };

  trace.queries.reserve(
      std::size_t{options.queries} * (1 + options.max_retries));
  std::uint32_t next_id = 0;
  for (std::uint32_t q = 0; q < options.queries; ++q) {
    StubQuery query;
    query.arrival_ms = rng.below(std::max<sim::SimTimeMs>(
        1, options.duration_ms));
    query.id = next_id++;
    query.client = static_cast<std::uint32_t>(
        rng.below(std::max<std::uint32_t>(1, options.clients)));
    const auto& domain = population.domains[rank_to_domain[sample_rank()]];
    query.typo = rng.uniform() < options.nxdomain_fraction;
    if (query.typo) {
      // A small typo alphabet per zone: distinct missing labels under the
      // same (Zipf-hot) zone, so one validated denial proof covers many
      // later typos — the RFC 8198 payoff the benchmark measures.
      const auto label = "nx" + std::to_string(rng.below(64));
      query.qname = dns::Name::of(domain.fqdn).prefixed(label).take();
    } else {
      query.qname = dns::Name::of(domain.fqdn);
    }
    const std::uint32_t primary_id = query.id;
    trace.queries.push_back(query);
    // Potential retransmits: emitted unconditionally into the trace,
    // suppressed at serve time if the original had been answered by then.
    for (std::uint32_t r = 1; r <= options.max_retries; ++r) {
      StubQuery retry = query;
      retry.arrival_ms =
          query.arrival_ms + sim::SimTimeMs{options.retry_timeout_ms} * r;
      retry.id = next_id++;
      retry.retry_of = primary_id;
      trace.queries.push_back(std::move(retry));
    }
  }
  trace.id_count = next_id;

  std::sort(trace.queries.begin(), trace.queries.end(),
            [](const StubQuery& a, const StubQuery& b) {
              if (a.arrival_ms != b.arrival_ms)
                return a.arrival_ms < b.arrival_ms;
              return a.id < b.id;
            });
  return trace;
}

}  // namespace ede::serve
