#include "serve/report.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "edns/ede.hpp"

namespace ede::serve {

namespace {

/// Fixed-precision rate rendering: the one float format in the report,
/// so the document stays byte-stable for identical inputs.
std::string rate4(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  return buf;
}

sim::SimTimeMs nearest_rank(const std::vector<sim::SimTimeMs>& sorted,
                            double quantile) {
  if (sorted.empty()) return 0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(quantile * n + 0.999999);
  rank = std::min(std::max<std::size_t>(rank, 1), sorted.size());
  return sorted[rank - 1];
}

void render_latency(std::ostringstream& out, const LatencySummary& latency) {
  out << "{\"p50\": " << latency.p50 << ", \"p95\": " << latency.p95
      << ", \"p99\": " << latency.p99 << ", \"max\": " << latency.max << "}";
}

void render_run(std::ostringstream& out, const RunSummary& run) {
  const auto& s = run.stats;
  out << "    {\n"
      << "      \"label\": \"" << run.label << "\",\n"
      << "      \"queries\": " << s.queries << ",\n"
      << "      \"served\": " << s.served << ",\n"
      << "      \"suppressed_retries\": " << s.suppressed_retries << ",\n"
      << "      \"live_retransmits\": " << s.live_retransmits << ",\n"
      << "      \"coalesced\": " << s.coalesced << ",\n"
      << "      \"waves\": " << s.waves << ",\n"
      << "      \"latency_ms\": ";
  render_latency(out, run.latency);
  out << ",\n"
      << "      \"cache_answered\": " << s.cache_answered << ",\n"
      << "      \"client_hit_rate\": " << rate4(run.hit_rate()) << ",\n"
      << "      \"synthesized_answers\": " << s.synthesized_answers << ",\n"
      << "      \"stale_answers\": " << s.stale_answers << ",\n"
      << "      \"stale_nxdomains\": " << s.stale_nxdomains << ",\n"
      << "      \"upstream_queries\": " << s.upstream_queries << ",\n"
      << "      \"prefetch_jobs\": " << s.prefetch_jobs << ",\n"
      << "      \"prefetch_upstream_queries\": "
      << s.prefetch_upstream_queries << ",\n"
      << "      \"busy_virtual_ms\": " << s.busy_virtual_ms << ",\n"
      << "      \"longest_wave_ms\": " << s.longest_wave_ms << ",\n"
      << "      \"resolver_cache\": {\"lookups\": " << run.cache.lookups
      << ", \"hits\": " << run.cache.hits
      << ", \"misses\": " << run.cache.misses
      << ", \"stale_hits\": " << run.cache.stale_hits << "},\n"
      << "      \"ede_deliveries\": {";
  bool first = true;
  for (const auto& [code, delivery] : run.ede) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << code << "\": {\"answers\": " << delivery.answers
        << ", \"clients\": " << delivery.clients << "}";
  }
  out << "}\n    }";
}

const RunSummary* find_run(const ServeReportDoc& doc,
                           const std::string& label) {
  for (const auto& run : doc.runs)
    if (run.label == label) return &run;
  return nullptr;
}

}  // namespace

double RunSummary::hit_rate() const {
  return stats.served == 0 ? 0.0
                           : static_cast<double>(stats.cache_answered) /
                                 static_cast<double>(stats.served);
}

LatencySummary summarize_latency(const std::vector<ClientAnswer>& answers) {
  std::vector<sim::SimTimeMs> latencies;
  latencies.reserve(answers.size());
  for (const auto& answer : answers)
    if (!answer.suppressed) latencies.push_back(answer.latency_ms);
  std::sort(latencies.begin(), latencies.end());
  LatencySummary summary;
  summary.p50 = nearest_rank(latencies, 0.50);
  summary.p95 = nearest_rank(latencies, 0.95);
  summary.p99 = nearest_rank(latencies, 0.99);
  summary.max = latencies.empty() ? 0 : latencies.back();
  return summary;
}

RunSummary summarize_run(std::string label,
                         const std::vector<ClientAnswer>& answers,
                         const ServeStats& stats,
                         const resolver::Cache::Stats& cache_delta) {
  RunSummary run;
  run.label = std::move(label);
  run.stats = stats;
  run.cache = cache_delta;
  run.latency = summarize_latency(answers);
  std::map<std::uint16_t, std::set<std::uint32_t>> clients_by_code;
  for (const auto& answer : answers) {
    if (answer.suppressed) continue;
    for (const std::uint16_t code : answer.ede) {
      ++run.ede[code].answers;
      clients_by_code[code].insert(answer.client);
    }
  }
  for (const auto& [code, clients] : clients_by_code)
    run.ede[code].clients = clients.size();
  return run;
}

std::string render_serve_json(const ServeReportDoc& doc) {
  std::ostringstream out;
  out << "{\n  \"config\": {\n"
      << "    \"clients\": " << doc.stub.clients << ",\n"
      << "    \"queries\": " << doc.stub.queries << ",\n"
      << "    \"duration_ms\": " << doc.stub.duration_ms << ",\n"
      << "    \"nxdomain_fraction\": " << rate4(doc.stub.nxdomain_fraction)
      << ",\n"
      << "    \"zipf_exponent\": " << rate4(doc.stub.zipf_exponent) << ",\n"
      << "    \"seed\": " << doc.stub.seed << ",\n"
      << "    \"inflight\": " << doc.inflight << ",\n"
      << "    \"wave_ms\": " << doc.wave_ms << "\n  },\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < doc.runs.size(); ++i) {
    if (i > 0) out << ",\n";
    render_run(out, doc.runs[i]);
  }
  out << "\n  ]";

  // Optimization deltas vs. the control runs: each optimization must
  // demonstrably move its own metric (the acceptance criterion).
  const auto* full = find_run(doc, "full");
  const auto* no_prefetch = find_run(doc, "no_prefetch");
  const auto* no_aggressive = find_run(doc, "no_aggressive");
  if (full && (no_prefetch || no_aggressive)) {
    out << ",\n  \"comparisons\": {";
    bool first = true;
    if (no_prefetch) {
      out << "\n    \"prefetch_hit_rate_lift\": "
          << rate4(full->hit_rate() - no_prefetch->hit_rate());
      first = false;
    }
    if (no_aggressive) {
      if (!first) out << ",";
      const auto with = full->stats.upstream_queries;
      const auto without = no_aggressive->stats.upstream_queries;
      out << "\n    \"aggressive_upstream_saved\": "
          << (without > with ? without - with : 0) << ",\n"
          << "    \"aggressive_upstream_reduction\": "
          << rate4(without == 0
                       ? 0.0
                       : 1.0 - static_cast<double>(with) /
                                   static_cast<double>(without));
    }
    out << "\n  }";
  }

  if (doc.outage) {
    const auto& o = *doc.outage;
    out << ",\n  \"outage\": {\n"
        << "    \"served\": " << o.served << ",\n"
        << "    \"stale_answers\": " << o.stale_answers << ",\n"
        << "    \"stale_nxdomains\": " << o.stale_nxdomains << ",\n"
        << "    \"ede3_clients\": " << o.ede3_clients << ",\n"
        << "    \"ede19_clients\": " << o.ede19_clients << ",\n"
        << "    \"latency_ms\": ";
    render_latency(out, o.latency);
    out << ",\n    \"p99_bound_ms\": " << o.p99_bound_ms << ",\n"
        << "    \"violations\": [";
    for (std::size_t i = 0; i < o.violations.size(); ++i) {
      if (i > 0) out << ", ";
      out << "\"" << o.violations[i] << "\"";
    }
    out << "]\n  }";
  }
  out << "\n}\n";
  return out.str();
}

std::string render_serve_text(const ServeReportDoc& doc) {
  std::ostringstream out;
  out << "frontline serving report (" << doc.stub.clients << " clients, "
      << doc.stub.queries << " queries, seed " << doc.stub.seed
      << ", inflight " << doc.inflight << ")\n";
  for (const auto& run : doc.runs) {
    const auto& s = run.stats;
    out << "  [" << run.label << "] served " << s.served << "/" << s.queries
        << " (suppressed " << s.suppressed_retries << ", coalesced "
        << s.coalesced << ")\n"
        << "    latency p50/p95/p99: " << run.latency.p50 << "/"
        << run.latency.p95 << "/" << run.latency.p99
        << " ms, client hit rate " << rate4(run.hit_rate())
        << ", synthesized " << s.synthesized_answers << "\n"
        << "    upstream " << s.upstream_queries << " (+"
        << s.prefetch_upstream_queries << " prefetch over "
        << s.prefetch_jobs << " jobs)\n";
    for (const auto& [code, delivery] : run.ede) {
      out << "    EDE " << code << " ("
          << edns::to_string(static_cast<edns::EdeCode>(code)) << "): "
          << delivery.answers << " answers to " << delivery.clients
          << " clients\n";
    }
  }
  if (doc.runs.size() > 1) {
    ServeStats totals;
    for (const auto& run : doc.runs) totals.merge(run.stats);
    out << "  [all runs] " << totals.queries << " queries over "
        << totals.waves << " waves (" << totals.live_retransmits
        << " live retransmits), busy " << totals.busy_virtual_ms
        << " virtual ms, longest wave " << totals.longest_wave_ms
        << " ms\n";
  }
  if (doc.outage) {
    const auto& o = *doc.outage;
    out << "  [outage] served " << o.served << ", EDE 3 to "
        << o.ede3_clients << " clients, EDE 19 to " << o.ede19_clients
        << " clients, p99 " << o.latency.p99 << " ms (bound "
        << o.p99_bound_ms << " ms), violations: " << o.violations.size()
        << "\n";
  }
  return out.str();
}

}  // namespace ede::serve
