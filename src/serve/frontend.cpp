#include "serve/frontend.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "dnscore/arena.hpp"
#include "dnscore/message.hpp"
#include "dnssec/findings.hpp"
#include "resolver/cache.hpp"
#include "resolver/resolver.hpp"

namespace ede::serve {

namespace {

constexpr sim::SimTimeMs kUnanswered =
    std::numeric_limits<sim::SimTimeMs>::max();

void note_findings(const resolver::Outcome& outcome, ClientAnswer& answer,
                   ServeStats& stats) {
  for (const auto& finding : outcome.findings) {
    if (finding.defect == dnssec::Defect::AnswerSynthesized) {
      answer.synthesized = true;
    } else if (finding.defect == dnssec::Defect::StaleAnswerServed) {
      answer.stale = true;
      ++stats.stale_answers;
    } else if (finding.defect == dnssec::Defect::StaleNxdomainServed) {
      answer.stale = true;
      ++stats.stale_nxdomains;
    }
  }
}

}  // namespace

FrontEnd::FrontEnd(resolver::RecursiveResolver& resolver,
                   sim::Network& network, FrontEndOptions options)
    : resolver_(resolver),
      network_(network),
      options_(options),
      sketch_(options.sketch) {
  options_.inflight = std::max<std::size_t>(1, options_.inflight);
  options_.wave_ms = std::max<sim::SimTimeMs>(1, options_.wave_ms);
}

void FrontEnd::run_prefetch(sim::SimTimeMs epoch) {
  sketch_.tick();
  if (!options_.prefetch) return;
  auto& cache = resolver_.cache();
  const sim::SimTime now = network_.clock().now();
  const auto expiring = cache.expiring_within(options_.prefetch_horizon_ms, now);
  if (expiring.empty()) return;

  // Candidates are (estimate desc, canonical key) — expiring_within()
  // already yields canonical order, so the stable sort's tie-break is
  // deterministic.
  std::vector<std::pair<std::uint32_t, const resolver::CacheKey*>> ranked;
  ranked.reserve(expiring.size());
  for (const auto& key : expiring) {
    const std::uint32_t estimate = sketch_.estimate(key.name);
    if (estimate >= options_.prefetch_min_popularity)
      ranked.emplace_back(estimate, &key);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  if (ranked.size() > options_.prefetch_max_per_wave)
    ranked.resize(options_.prefetch_max_per_wave);
  if (ranked.empty()) return;

  std::vector<resolver::ResolveJob> jobs;
  jobs.reserve(ranked.size());
  for (const auto& [estimate, key] : ranked)
    jobs.push_back({key->name, key->type, /*refresh=*/true});

  std::uint64_t upstream = 0;
  resolver_.resolve_many(jobs, options_.inflight,
                         [&](std::size_t, resolver::Outcome&& outcome) {
                           upstream += static_cast<std::uint64_t>(
                               std::max(0, outcome.upstream_queries));
                         });
  stats_.prefetch_jobs += jobs.size();
  stats_.prefetch_upstream_queries += upstream;
  // The prefetcher spends virtual time off the client path (a real one
  // runs on a maintenance thread): rewind to the wave epoch so client
  // latency measures client work only. Its cost shows up where it
  // belongs — in prefetch_upstream_queries.
  network_.clock().set_ms(epoch);
}

std::vector<ClientAnswer> FrontEnd::serve(const StubTrace& trace) {
  const sim::SimTimeMs base = network_.clock().now_ms();
  std::vector<ClientAnswer> answers(trace.queries.size());
  // Absolute answer time per query id (kUnanswered until served); what
  // decides whether a retransmit is live or absorbed.
  std::vector<sim::SimTimeMs> answered_at(trace.id_count, kUnanswered);

  sim::SimTimeMs last_wave_end = 0;
  std::size_t i = 0;
  while (i < trace.queries.size()) {
    const sim::SimTimeMs wave_start =
        trace.queries[i].arrival_ms / options_.wave_ms * options_.wave_ms;
    const sim::SimTimeMs wave_end = wave_start + options_.wave_ms;
    std::size_t j = i;
    while (j < trace.queries.size() &&
           trace.queries[j].arrival_ms < wave_end)
      ++j;
    last_wave_end = wave_end;

    const sim::SimTimeMs epoch = base + wave_start;
    network_.clock().set_ms(epoch);
    ++stats_.waves;
    run_prefetch(epoch);

    // Dedup the wave into distinct resolutions; absorb dead retransmits.
    std::vector<resolver::ResolveJob> jobs;
    std::map<resolver::CacheKey, std::size_t> job_of;
    constexpr std::size_t kSuppressed = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> query_job(j - i, kSuppressed);
    for (std::size_t k = i; k < j; ++k) {
      const StubQuery& query = trace.queries[k];
      ++stats_.queries;
      ClientAnswer& answer = answers[k];
      answer.client = query.client;
      if (query.retry_of != kNoRetry) {
        const sim::SimTimeMs original = answered_at[query.retry_of];
        if (original != kUnanswered && original <= base + query.arrival_ms) {
          answer.suppressed = true;
          ++stats_.suppressed_retries;
          continue;
        }
        answer.retransmit = true;
        ++stats_.live_retransmits;
      }
      sketch_.observe(query.qname);
      const auto [slot, inserted] = job_of.try_emplace(
          resolver::CacheKey{query.qname, query.qtype}, jobs.size());
      if (inserted)
        jobs.push_back({query.qname, query.qtype});
      else
        ++stats_.coalesced;
      query_job[k - i] = slot->second;
    }

    std::vector<resolver::Outcome> outcomes(jobs.size());
    const auto report = resolver_.resolve_many(
        jobs, options_.inflight,
        [&](std::size_t index, resolver::Outcome&& outcome) {
          outcomes[index] = std::move(outcome);
        });
    stats_.busy_virtual_ms += report.makespan_ms;
    stats_.longest_wave_ms =
        std::max(stats_.longest_wave_ms, report.makespan_ms);
    for (const auto& outcome : outcomes)
      stats_.upstream_queries +=
          static_cast<std::uint64_t>(std::max(0, outcome.upstream_queries));

    for (std::size_t k = i; k < j; ++k) {
      const std::size_t slot = query_job[k - i];
      if (slot == kSuppressed) continue;
      const StubQuery& query = trace.queries[k];
      ClientAnswer& answer = answers[k];
      const resolver::Outcome& outcome = outcomes[slot];
      answer.rcode = outcome.rcode;
      answer.ede.reserve(outcome.errors.size());
      for (const auto& error : outcome.errors)
        answer.ede.push_back(static_cast<std::uint16_t>(error.code));
      std::sort(answer.ede.begin(), answer.ede.end());
      answer.ede.erase(std::unique(answer.ede.begin(), answer.ede.end()),
                       answer.ede.end());
      answer.latency_ms = report.job_duration_ms[slot];
      answer.from_cache = answer.latency_ms == 0;
      note_findings(outcome, answer, stats_);
      ++stats_.served;
      if (answer.from_cache) ++stats_.cache_answered;
      if (answer.synthesized) ++stats_.synthesized_answers;
      answered_at[query.id] = base + query.arrival_ms + answer.latency_ms;
    }
    i = j;
  }

  network_.clock().set_ms(base + last_wave_end);
  return answers;
}

void FrontEnd::attach(const sim::NodeAddress& address) {
  network_.attach(address, [this](crypto::BytesView wire,
                                  const sim::PacketContext&)
                              -> std::optional<crypto::Bytes> {
    dns::Message query;
    if (!dns::Message::parse_into(wire, query)) return std::nullopt;
    if (query.header.qr || query.question.size() != 1) return std::nullopt;
    const dns::Question& question = query.question.front();
    auto outcome =
        resolver_.resolve(question.qname, question.qtype);
    dns::Message response = std::move(outcome.response);
    response.header.id = query.header.id;
    response.header.qr = true;
    response.header.rd = query.header.rd;
    response.header.ra = true;
    response.question.assign(1, question);
    return response.serialize();
  });
}

}  // namespace ede::serve
