#include "serve/sketch.hpp"

#include <algorithm>

#include "crypto/rng.hpp"

namespace ede::serve {

namespace {

std::uint32_t round_up_pow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v && p < (1u << 30)) p <<= 1;
  return p;
}

}  // namespace

PopularitySketch::PopularitySketch() : PopularitySketch(Options{}) {}

PopularitySketch::PopularitySketch(Options options) : options_(options) {
  options_.rows = std::max<std::uint32_t>(1, options_.rows);
  options_.cols = round_up_pow2(std::max<std::uint32_t>(2, options_.cols));
  options_.decay_interval =
      std::max<std::uint32_t>(1, options_.decay_interval);
  mask_ = options_.cols - 1;
  cells_.assign(std::size_t{options_.rows} * options_.cols, 0);
}

std::size_t PopularitySketch::cell(const dns::Name& name,
                                   std::uint32_t row) const {
  // Name::hash() is case-insensitive FNV over the wire bytes; one
  // splitmix64 round per row turns it into `rows` independent indexes.
  const std::uint64_t base = static_cast<std::uint64_t>(name.hash());
  const std::uint64_t mixed =
      crypto::SplitMix64(base ^ (0x9e3779b97f4a7c15ULL * (row + 1))).next();
  return std::size_t{row} * options_.cols +
         (static_cast<std::uint32_t>(mixed) & mask_);
}

void PopularitySketch::observe(const dns::Name& name) {
  std::uint32_t current = estimate(name);
  if (current == ~std::uint32_t{0}) return;  // saturated
  ++current;
  for (std::uint32_t row = 0; row < options_.rows; ++row) {
    auto& c = cells_[cell(name, row)];
    c = std::max(c, current);  // conservative update
  }
}

std::uint32_t PopularitySketch::estimate(const dns::Name& name) const {
  std::uint32_t best = ~std::uint32_t{0};
  for (std::uint32_t row = 0; row < options_.rows; ++row) {
    best = std::min(best, cells_[cell(name, row)]);
  }
  return best;
}

void PopularitySketch::tick() {
  if (++tick_count_ % options_.decay_interval != 0) return;
  for (auto& c : cells_) c >>= 1;
}

}  // namespace ede::serve
