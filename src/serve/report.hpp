// Serving-benchmark report assembly (DESIGN.md §5h): fold per-query
// ClientAnswers into latency percentiles, per-EDE-code delivery counts
// (answers and distinct clients) and cache/upstream accounting, and
// render the whole document as byte-stable JSON — same seed, same bytes.
// Wall-clock throughput is deliberately NOT part of this document; the
// bench emits it into a separate measurement file so the deterministic
// report can be cmp'd across runs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "resolver/cache.hpp"
#include "serve/frontend.hpp"
#include "serve/stubs.hpp"

namespace ede::serve {

struct LatencySummary {
  sim::SimTimeMs p50 = 0;
  sim::SimTimeMs p95 = 0;
  sim::SimTimeMs p99 = 0;
  sim::SimTimeMs max = 0;
};

/// Delivery of one EDE code across a run.
struct EdeDelivery {
  std::uint64_t answers = 0;  // served answers carrying the code
  std::uint64_t clients = 0;  // distinct clients that ever received it
};

/// One serving run (the full engine, or a control with an optimization
/// switched off) folded down to the numbers the report prints.
struct RunSummary {
  std::string label;
  ServeStats stats;
  LatencySummary latency;
  /// Resolver-cache counter deltas over the run (Stats contract:
  /// hits + misses + stale_hits == lookups).
  resolver::Cache::Stats cache;
  std::map<std::uint16_t, EdeDelivery> ede;

  /// Client-visible hit rate: answers served in 0 virtual ms / served.
  [[nodiscard]] double hit_rate() const;
};

/// Nearest-rank percentiles over the served (non-suppressed) answers.
[[nodiscard]] LatencySummary summarize_latency(
    const std::vector<ClientAnswer>& answers);

/// Fold one run; `cache_delta` is after-minus-before resolver cache stats.
[[nodiscard]] RunSummary summarize_run(
    std::string label, const std::vector<ClientAnswer>& answers,
    const ServeStats& stats, const resolver::Cache::Stats& cache_delta);

/// The serve-stale-under-outage scenario's machine-checked summary.
struct OutageSummary {
  std::uint64_t served = 0;
  std::uint64_t stale_answers = 0;    // EDE 3 deliveries
  std::uint64_t stale_nxdomains = 0;  // EDE 19 deliveries
  std::uint64_t ede3_clients = 0;
  std::uint64_t ede19_clients = 0;
  LatencySummary latency;
  sim::SimTimeMs p99_bound_ms = 0;  // the invariant the bench enforced
  /// Machine-checked invariant violations; must be empty for the bench
  /// to exit 0. Rendered into the report so a regression is visible in
  /// the artifact, not only in the exit code.
  std::vector<std::string> violations;
};

struct ServeReportDoc {
  StubOptions stub;
  std::size_t inflight = 0;
  sim::SimTimeMs wave_ms = 0;
  /// runs[0] is the full engine; controls follow (no_prefetch,
  /// no_aggressive) when the bench ran them.
  std::vector<RunSummary> runs;
  std::optional<OutageSummary> outage;
};

/// Byte-stable JSON rendering (fixed field order, fixed float precision).
[[nodiscard]] std::string render_serve_json(const ServeReportDoc& doc);

/// Human-oriented text table for stdout.
[[nodiscard]] std::string render_serve_text(const ServeReportDoc& doc);

}  // namespace ede::serve
