// Synthetic stub-client population for the frontline serving engine
// (DESIGN.md §5h): Zipf query popularity over the scan world's registered
// domains, per-client retransmit behavior, deterministic per seed.
//
// The model follows hello-dns resolver.md's sizing note — "individual CPU
// cores expected to satisfy the DNS needs of hundreds of thousands of
// users" — by making the client count a free parameter that only costs
// one uint32 per query, while query volume and popularity skew are
// controlled independently.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "dnscore/name.hpp"
#include "dnscore/types.hpp"
#include "scan/population.hpp"
#include "simnet/clock.hpp"

namespace ede::serve {

struct StubOptions {
  /// Modeled stub clients behind this resolver (hundreds of thousands per
  /// core is the production shape; each costs one id per query).
  std::uint32_t clients = 100'000;
  /// Primary queries in the trace (retransmits come on top).
  std::uint32_t queries = 120'000;
  /// Virtual-time span the arrivals are spread over.
  sim::SimTimeMs duration_ms = 1'500'000;
  /// Zipf popularity exponent over the domain population, most-popular
  /// first (1.0 is the classic web-traffic fit).
  double zipf_exponent = 1.0;
  /// Fraction of queries aimed at nonexistent labels under an existing
  /// (Zipf-sampled) domain — the typo traffic RFC 8198 aggressive
  /// negative caching feeds on.
  double nxdomain_fraction = 0.10;
  /// Per-client retransmit timer and cap: a stub that has not heard back
  /// after this long asks again (RFC 1035 §4.2.1 client behavior).
  std::uint32_t retry_timeout_ms = 3'000;
  std::uint32_t max_retries = 1;
  std::uint64_t seed = 42;
};

constexpr std::uint32_t kNoRetry = std::numeric_limits<std::uint32_t>::max();

struct StubQuery {
  /// Arrival offset from the trace start.
  sim::SimTimeMs arrival_ms = 0;
  /// Stable id (pre-sort emission order); retransmits reference it.
  std::uint32_t id = 0;
  std::uint32_t client = 0;
  dns::Name qname;
  dns::RRType qtype = dns::RRType::A;
  /// True for synthesized-typo queries (expected NXDOMAIN).
  bool typo = false;
  /// kNoRetry for primaries; the original's `id` for retransmits. A
  /// retransmit is only *live* if the original was still unanswered at
  /// this arrival time — the front end decides that, because answer
  /// latency is an output of serving, not of trace generation.
  std::uint32_t retry_of = kNoRetry;
};

struct StubTrace {
  StubOptions options;
  /// Sorted by (arrival_ms, id): the order the front end serves them.
  std::vector<StubQuery> queries;
  /// Highest id + 1 (ids are dense; size for an id-indexed table).
  std::uint32_t id_count = 0;
};

/// Deterministically generate a trace over `population`'s domains.
/// Popularity rank maps to domain index through a seeded permutation, so
/// hotness is independent of the generator's category placement order.
[[nodiscard]] StubTrace generate_stub_trace(const scan::Population& population,
                                            const StubOptions& options);

}  // namespace ede::serve
