// Frontline serving engine (DESIGN.md §5h): the piece that turns the
// batch resolver into something a stub population talks to.
//
// Queries arrive on a virtual timeline (StubTrace) and are served in
// fixed-width waves: each wave rebases the shared clock to its epoch,
// optionally runs a prefetch pass (refreshing expiring-and-still-popular
// records before clients can miss on them), dedupes the wave's queries
// into distinct (qname, qtype) resolutions, and drives them through
// RecursiveResolver::resolve_many. Per-query latency is the resolver's
// virtual duration for the backing job — 0 ms for a cache answer — and
// retransmits whose original was answered before they arrived are
// suppressed, exactly as a real front end absorbs them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dnscore/name.hpp"
#include "dnscore/types.hpp"
#include "resolver/resolver.hpp"
#include "serve/sketch.hpp"
#include "serve/stubs.hpp"
#include "simnet/network.hpp"

namespace ede::serve {

struct FrontEndOptions {
  /// resolve_many window per wave (how many resolutions multiplex).
  std::size_t inflight = 256;
  /// Arrival batching granularity; also the serving tick for the
  /// popularity sketch's decay clock.
  sim::SimTimeMs wave_ms = 1'000;
  /// Expiring-popular-name prefetch (the cache-hit-rate optimization).
  bool prefetch = true;
  /// Refresh records expiring within this horizon of the wave epoch.
  sim::SimTimeMs prefetch_horizon_ms = 30'000;
  /// Minimum decayed sketch estimate for a name to earn a refresh.
  std::uint32_t prefetch_min_popularity = 4;
  /// Cap per wave so a mass expiry cannot starve client traffic.
  std::size_t prefetch_max_per_wave = 128;
  PopularitySketch::Options sketch;
};

/// What one stub query got back; indexed like StubTrace::queries.
struct ClientAnswer {
  std::uint32_t client = 0;
  dns::RCode rcode = dns::RCode::SERVFAIL;
  /// Sorted, deduplicated EDE codes attached to the answer.
  std::vector<std::uint16_t> ede;
  sim::SimTimeMs latency_ms = 0;
  /// Retransmit absorbed because the original was answered by its
  /// arrival; carries no rcode/latency of its own.
  bool suppressed = false;
  /// Retransmit that was still live (original unanswered) and got served.
  bool retransmit = false;
  /// Answered in 0 virtual ms — from cache (fresh, stale or synthesized).
  bool from_cache = false;
  /// RFC 8198: answer synthesized from a cached denial proof.
  bool synthesized = false;
  /// RFC 8767: stale data served (EDE 3 / EDE 19 material).
  bool stale = false;
};

struct ServeStats {
  std::uint64_t queries = 0;  // trace entries processed
  std::uint64_t served = 0;   // answered (queries - suppressed)
  std::uint64_t suppressed_retries = 0;
  std::uint64_t live_retransmits = 0;
  /// Duplicate (qname, qtype) within a wave folded into one resolution.
  std::uint64_t coalesced = 0;
  std::uint64_t cache_answered = 0;  // served in 0 virtual ms
  std::uint64_t synthesized_answers = 0;
  std::uint64_t stale_answers = 0;
  std::uint64_t stale_nxdomains = 0;
  /// Upstream queries spent on client-facing resolutions vs. on the
  /// prefetcher's refreshes (the prefetcher pays to move hits up).
  std::uint64_t upstream_queries = 0;
  std::uint64_t prefetch_upstream_queries = 0;
  std::uint64_t prefetch_jobs = 0;
  std::uint64_t waves = 0;
  /// Sum of wave makespans: virtual time the engine spent resolving.
  sim::SimTimeMs busy_virtual_ms = 0;
  sim::SimTimeMs longest_wave_ms = 0;

  /// Fold another run's stats in — counters sum, the wave high-water
  /// mark takes the max (the report's all-runs totals line uses this).
  /// S1-checked: every counter must be folded here and rendered.
  void merge(const ServeStats& other) {
    queries += other.queries;
    served += other.served;
    suppressed_retries += other.suppressed_retries;
    live_retransmits += other.live_retransmits;
    coalesced += other.coalesced;
    cache_answered += other.cache_answered;
    synthesized_answers += other.synthesized_answers;
    stale_answers += other.stale_answers;
    stale_nxdomains += other.stale_nxdomains;
    upstream_queries += other.upstream_queries;
    prefetch_upstream_queries += other.prefetch_upstream_queries;
    prefetch_jobs += other.prefetch_jobs;
    waves += other.waves;
    busy_virtual_ms += other.busy_virtual_ms;
    longest_wave_ms = std::max(longest_wave_ms, other.longest_wave_ms);
  }
};

class FrontEnd {
 public:
  FrontEnd(resolver::RecursiveResolver& resolver, sim::Network& network,
           FrontEndOptions options = {});

  /// Serve a whole trace in arrival order; returns per-query answers
  /// indexed like trace.queries. The shared clock ends at the last wave
  /// boundary. Deterministic for a fixed (trace, options, world) — and
  /// per-client rcode/EDE outcomes are invariant under `inflight`.
  std::vector<ClientAnswer> serve(const StubTrace& trace);

  /// Simnet endpoint plumbing: attach at `address` and answer one-shot
  /// RD=1 wire queries via the blocking resolve() path, with the full
  /// EDE-annotated response message on the wire. Lets other simulated
  /// nodes use this front end as their recursive.
  void attach(const sim::NodeAddress& address);

  [[nodiscard]] const ServeStats& stats() const { return stats_; }
  [[nodiscard]] const FrontEndOptions& options() const { return options_; }
  [[nodiscard]] PopularitySketch& sketch() { return sketch_; }

 private:
  void run_prefetch(sim::SimTimeMs epoch);

  resolver::RecursiveResolver& resolver_;
  sim::Network& network_;
  FrontEndOptions options_;
  PopularitySketch sketch_;
  ServeStats stats_;
};

}  // namespace ede::serve
