// Frequency-decayed popularity sketch driving the expiring-popular-name
// prefetcher (DESIGN.md §5h).
//
// A count-min sketch with conservative update, whose cells are halved
// every `decay_interval` serving ticks: "popular" means popular
// *recently*, so a name that stops being queried stops being refreshed
// after a few decay periods instead of being prefetched forever. Fixed
// memory (rows × cols counters) regardless of how many distinct names the
// stub population queries, which is the point of a sketch at
// hundreds-of-thousands-of-clients scale.
#pragma once

#include <cstdint>
#include <vector>

#include "dnscore/name.hpp"

namespace ede::serve {

class PopularitySketch {
 public:
  struct Options {
    std::uint32_t rows = 4;
    /// Cells per row; rounded up to a power of two.
    std::uint32_t cols = 8'192;
    /// Serving ticks between halvings (the decay half-life, in waves).
    std::uint32_t decay_interval = 64;
  };

  PopularitySketch();
  explicit PopularitySketch(Options options);

  /// Count one query for `name` (conservative update: only the minimal
  /// cells grow, which tightens over-estimates under hash collisions).
  void observe(const dns::Name& name);

  /// Upper-bound estimate of the (decayed) query count for `name`.
  [[nodiscard]] std::uint32_t estimate(const dns::Name& name) const;

  /// One serving tick; every `decay_interval` ticks all cells halve.
  void tick();

 private:
  [[nodiscard]] std::size_t cell(const dns::Name& name,
                                 std::uint32_t row) const;

  Options options_;
  std::uint32_t mask_ = 0;       // cols - 1 (power of two)
  std::uint32_t tick_count_ = 0;
  std::vector<std::uint32_t> cells_;  // rows × cols, row-major
};

}  // namespace ede::serve
