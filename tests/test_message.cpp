// Message-level tests: header flags, full serialize/parse round-trips,
// EDNS extended-RCODE plumbing and malformed-message rejection.
#include <gtest/gtest.h>

#include "dnscore/message.hpp"
#include "edns/edns.hpp"

namespace {

using namespace ede::dns;

Message sample_response() {
  Message msg = make_query(0x1234, Name::of("example.com"), RRType::A);
  msg.header.qr = true;
  msg.header.aa = true;
  msg.header.ra = true;
  msg.answer.push_back({Name::of("example.com"), RRType::A, RRClass::IN, 3600,
                        ARdata{*Ipv4Address::parse("192.0.2.1")}});
  msg.answer.push_back({Name::of("example.com"), RRType::A, RRClass::IN, 3600,
                        ARdata{*Ipv4Address::parse("192.0.2.2")}});
  msg.authority.push_back({Name::of("example.com"), RRType::NS, RRClass::IN,
                           86400, NsRdata{Name::of("ns1.example.com")}});
  msg.additional.push_back({Name::of("ns1.example.com"), RRType::A,
                            RRClass::IN, 3600,
                            ARdata{*Ipv4Address::parse("192.0.2.53")}});
  return msg;
}

TEST(Message, QueryRoundTrip) {
  const Message query = make_query(42, Name::of("www.example.com"), RRType::AAAA);
  const auto parsed = Message::parse(query.serialize());
  ASSERT_TRUE(parsed.ok());
  const auto& msg = parsed.value();
  EXPECT_EQ(msg.header.id, 42);
  EXPECT_FALSE(msg.header.qr);
  EXPECT_TRUE(msg.header.rd);
  ASSERT_EQ(msg.question.size(), 1u);
  EXPECT_EQ(msg.question.front().qname, Name::of("www.example.com"));
  EXPECT_EQ(msg.question.front().qtype, RRType::AAAA);
  EXPECT_EQ(msg.question.front().qclass, RRClass::IN);
}

TEST(Message, FullResponseRoundTrip) {
  const Message original = sample_response();
  const auto parsed = Message::parse(original.serialize());
  ASSERT_TRUE(parsed.ok());
  const auto& msg = parsed.value();
  EXPECT_TRUE(msg.header.qr);
  EXPECT_TRUE(msg.header.aa);
  EXPECT_TRUE(msg.header.ra);
  ASSERT_EQ(msg.answer.size(), 2u);
  ASSERT_EQ(msg.authority.size(), 1u);
  ASSERT_EQ(msg.additional.size(), 1u);
  EXPECT_EQ(msg.answer[0], original.answer[0]);
  EXPECT_EQ(msg.authority[0], original.authority[0]);
  EXPECT_EQ(msg.additional[0], original.additional[0]);
}

TEST(Message, CompressionShrinksRepeatedNames) {
  const Message msg = sample_response();
  const auto wire = msg.serialize();
  // Uncompressed, "example.com" appears 4+ times (13 bytes each). With
  // compression the message must be well under that.
  std::size_t uncompressed = 12;  // header
  uncompressed += 13 + 4;                       // question
  uncompressed += 3 * (13 + 10) + 4 + 4 + 13 + 4;  // very rough floor
  EXPECT_LT(wire.size(), uncompressed);
  // And it still parses back to the same content.
  EXPECT_TRUE(Message::parse(wire).ok());
}

TEST(Message, AllFlagBitsSurvive) {
  Message msg = make_query(7, Name::of("x.test"), RRType::TXT);
  msg.header.qr = true;
  msg.header.aa = true;
  msg.header.tc = true;
  msg.header.rd = true;
  msg.header.ra = true;
  msg.header.ad = true;
  msg.header.cd = true;
  msg.header.opcode = Opcode::NOTIFY;
  msg.header.rcode = RCode::REFUSED;
  const auto parsed = Message::parse(msg.serialize());
  ASSERT_TRUE(parsed.ok());
  const auto& h = parsed.value().header;
  EXPECT_TRUE(h.qr && h.aa && h.tc && h.rd && h.ra && h.ad && h.cd);
  EXPECT_EQ(h.opcode, Opcode::NOTIFY);
  EXPECT_EQ(h.rcode, RCode::REFUSED);
}

TEST(Message, ExtendedRcodeNeedsOpt) {
  Message msg = make_query(1, Name::of("a.test"), RRType::A);
  msg.header.rcode = RCode::BADVERS;  // 16: does not fit the 4-bit field
  EXPECT_THROW((void)msg.serialize(), std::logic_error);
}

TEST(Message, ExtendedRcodeRoundTripsThroughOpt) {
  Message msg = make_query(1, Name::of("a.test"), RRType::A);
  msg.header.qr = true;
  ede::edns::set_edns(msg, ede::edns::Edns{});
  msg.header.rcode = RCode::BADCOOKIE;  // 23
  const auto parsed = Message::parse(msg.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().header.rcode, RCode::BADCOOKIE);
}

TEST(Message, RejectsTrailingBytes) {
  auto wire = make_query(1, Name::of("a.test"), RRType::A).serialize();
  wire.push_back(0x00);
  EXPECT_FALSE(Message::parse(wire).ok());
}

TEST(Message, RejectsTruncatedHeader) {
  const ede::crypto::Bytes wire = {0x00, 0x01, 0x00};
  EXPECT_FALSE(Message::parse(wire).ok());
}

TEST(Message, RejectsCountsBeyondData) {
  auto wire = make_query(1, Name::of("a.test"), RRType::A).serialize();
  wire[5] = 9;  // claim 9 questions
  EXPECT_FALSE(Message::parse(wire).ok());
}

TEST(Message, FindOptLocatesThePseudoRecord) {
  Message msg = make_query(1, Name::of("a.test"), RRType::A);
  EXPECT_EQ(msg.find_opt(), nullptr);
  ede::edns::set_edns(msg, ede::edns::Edns{});
  ASSERT_NE(msg.find_opt(), nullptr);
  EXPECT_EQ(msg.find_opt()->type, RRType::OPT);
}

TEST(Message, ToStringMentionsSections) {
  const auto text = sample_response().to_string();
  EXPECT_NE(text.find("QUESTION SECTION"), std::string::npos);
  EXPECT_NE(text.find("ANSWER SECTION"), std::string::npos);
  EXPECT_NE(text.find("AUTHORITY SECTION"), std::string::npos);
  EXPECT_NE(text.find("192.0.2.1"), std::string::npos);
}

}  // namespace
