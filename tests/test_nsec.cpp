// Flat-NSEC (RFC 4034 §4) denial-of-existence tests: signing, chain
// invariants, server proof composition, validator acceptance/rejection and
// a full end-to-end resolution through an NSEC-signed hierarchy.
#include <gtest/gtest.h>

#include "dnssec/nsec3.hpp"
#include "edns/edns.hpp"
#include "resolver/resolver.hpp"
#include "server/auth_server.hpp"
#include "zone/signer.hpp"

namespace {

using namespace ede;
using namespace ede::dnssec;
using dns::Name;
using dns::RRType;

TEST(NsecCovers, OrderingAndWraparound) {
  const Name apex = Name::of("z.example");
  const Name a = Name::of("a.z.example");
  const Name m = Name::of("m.z.example");
  const Name z = Name::of("zz.z.example");
  EXPECT_TRUE(nsec_covers(a, z, m));
  EXPECT_FALSE(nsec_covers(a, m, z));
  EXPECT_FALSE(nsec_covers(a, z, a));
  EXPECT_FALSE(nsec_covers(a, z, z));
  // Last record wraps to the apex: covers names after the owner.
  EXPECT_TRUE(nsec_covers(z, apex, Name::of("zzz.z.example")));
  // The apex sorts before everything under it: nothing below sneaks in.
  EXPECT_FALSE(nsec_covers(z, apex, m));
}

const zone::SigningPolicy& nsec_policy() {
  static const zone::SigningPolicy policy = [] {
    zone::SigningPolicy p;
    p.denial = zone::DenialMode::Nsec;
    return p;
  }();
  return policy;
}

class NsecZone : public ::testing::Test {
 protected:
  void SetUp() override {
    zone_ = std::make_shared<zone::Zone>(Name::of("flat.example"));
    dns::SoaRdata soa;
    soa.mname = Name::of("ns1.flat.example");
    soa.rname = Name::of("hostmaster.flat.example");
    soa.minimum = 300;
    zone_->add(zone_->origin(), RRType::SOA, soa);
    zone_->add(zone_->origin(), RRType::NS,
               dns::NsRdata{Name::of("ns1.flat.example")});
    zone_->add(Name::of("ns1.flat.example"), RRType::A,
               dns::ARdata{*dns::Ipv4Address::parse("93.184.221.1")});
    zone_->add(Name::of("alpha.flat.example"), RRType::A,
               dns::ARdata{*dns::Ipv4Address::parse("93.184.221.2")});
    zone_->add(Name::of("omega.flat.example"), RRType::TXT,
               dns::TxtRdata{{"last"}});
    // An unsigned delegation for the DS-absence proof.
    zone_->add(Name::of("child.flat.example"), RRType::NS,
               dns::NsRdata{Name::of("ns1.child.flat.example")});
    zone_->add(Name::of("ns1.child.flat.example"), RRType::A,
               dns::ARdata{*dns::Ipv4Address::parse("93.184.221.3")});
    keys_ = zone::make_zone_keys(zone_->origin());
    zone::sign_zone(*zone_, keys_, nsec_policy());
    server_.add_zone(zone_);
  }

  dns::Message ask(std::string_view qname, RRType qtype) {
    dns::Message query = dns::make_query(1, Name::of(qname), qtype);
    edns::Edns e;
    e.dnssec_ok = true;
    e.udp_payload_size = 0xffff;
    edns::set_edns(query, e);
    return server_.handle(
        query, sim::PacketContext{sim::NodeAddress::of("192.0.2.9")});
  }

  std::vector<dns::DnskeyRdata> keys() const {
    return {keys_.ksk.dnskey, keys_.zsk.dnskey};
  }

  std::shared_ptr<zone::Zone> zone_;
  zone::ZoneKeys keys_;
  server::AuthServer server_;
};

TEST_F(NsecZone, ChainIsClosedInCanonicalOrder) {
  std::vector<Name> owners;
  for (const auto& name : zone_->names()) {
    if (zone_->find(name, RRType::NSEC) != nullptr) owners.push_back(name);
  }
  ASSERT_GE(owners.size(), 4u);
  for (std::size_t i = 0; i < owners.size(); ++i) {
    const auto* rrset = zone_->find(owners[i], RRType::NSEC);
    const auto& nsec = std::get<dns::NsecRdata>(rrset->rdatas.front());
    EXPECT_EQ(nsec.next_domain, owners[(i + 1) % owners.size()])
        << owners[i].to_string();
  }
}

TEST_F(NsecZone, NsecRecordsAreSignedIncludingAtTheCut) {
  for (const auto& name : zone_->names()) {
    if (zone_->find(name, RRType::NSEC) == nullptr) continue;
    EXPECT_FALSE(zone_->signatures(name, RRType::NSEC).empty())
        << name.to_string();
  }
}

TEST_F(NsecZone, NxdomainProofValidates) {
  const auto response = ask("missing.flat.example", RRType::A);
  EXPECT_EQ(response.header.rcode, dns::RCode::NXDOMAIN);
  const auto result = validate_negative_response(
      Name::of("missing.flat.example"), RRType::A, zone_->origin(),
      dns::group_rrsets(response.authority), keys(), sim::kDefaultNow, {});
  EXPECT_EQ(result.security, Security::Secure) << [&] {
    std::string s;
    for (const auto& f : result.findings) s += to_string(f) + "; ";
    return s;
  }();
}

TEST_F(NsecZone, NodataProofValidates) {
  const auto response = ask("alpha.flat.example", RRType::TXT);
  EXPECT_EQ(response.header.rcode, dns::RCode::NOERROR);
  EXPECT_TRUE(response.answer.empty());
  const auto result = validate_negative_response(
      Name::of("alpha.flat.example"), RRType::TXT, zone_->origin(),
      dns::group_rrsets(response.authority), keys(), sim::kDefaultNow, {});
  EXPECT_EQ(result.security, Security::Secure);
}

TEST_F(NsecZone, NodataProofRejectsLyingBitmap) {
  // Claim TXT does exist at alpha: the validator must refuse the proof.
  const auto response = ask("alpha.flat.example", RRType::TXT);
  auto authority = dns::group_rrsets(response.authority);
  for (auto& set : authority) {
    if (set.type != RRType::NSEC) continue;
    for (auto& rd : set.rdatas) {
      std::get<dns::NsecRdata>(rd).types.add(RRType::TXT);
    }
  }
  const auto result = validate_negative_response(
      Name::of("alpha.flat.example"), RRType::TXT, zone_->origin(),
      authority, keys(), sim::kDefaultNow, {});
  EXPECT_EQ(result.security, Security::Bogus);
}

TEST_F(NsecZone, UnsignedNsecIsRejected) {
  const auto response = ask("missing.flat.example", RRType::A);
  auto authority = dns::group_rrsets(response.authority);
  // Strip every RRSIG.
  authority.erase(std::remove_if(authority.begin(), authority.end(),
                                 [](const dns::RRset& set) {
                                   return set.type == RRType::RRSIG;
                                 }),
                  authority.end());
  const auto result = validate_negative_response(
      Name::of("missing.flat.example"), RRType::A, zone_->origin(),
      authority, keys(), sim::kDefaultNow, {});
  EXPECT_EQ(result.security, Security::Bogus);
}

TEST_F(NsecZone, DsAbsenceProofAtTheCut) {
  const auto response = ask("www.child.flat.example", RRType::A);
  // A referral with the cut's NSEC proving no DS.
  const auto result = validate_ds_absence(
      Name::of("child.flat.example"), zone_->origin(),
      dns::group_rrsets(response.authority), keys(), sim::kDefaultNow, {});
  EXPECT_EQ(result.security, Security::Insecure);
}

TEST(NsecEndToEnd, FullResolutionThroughAnNsecSignedHierarchy) {
  auto clock = std::make_shared<sim::Clock>();
  auto network = std::make_shared<sim::Network>(clock);

  // Root (NSEC-signed) delegating to an NSEC-signed child.
  const Name root_name;
  const Name child_name = Name::of("nsec.test");
  auto child = std::make_shared<zone::Zone>(child_name);
  dns::SoaRdata soa;
  soa.mname = child_name;
  soa.rname = child_name;
  soa.minimum = 300;
  child->add(child_name, RRType::SOA, soa);
  child->add(child_name, RRType::NS,
             dns::NsRdata{Name::of("ns1.nsec.test")});
  child->add(Name::of("ns1.nsec.test"), RRType::A,
             dns::ARdata{*dns::Ipv4Address::parse("93.184.222.1")});
  child->add(child_name, RRType::A,
             dns::ARdata{*dns::Ipv4Address::parse("93.184.222.9")});
  const auto child_keys = zone::make_zone_keys(child_name);
  zone::sign_zone(*child, child_keys, nsec_policy());
  auto child_server = std::make_shared<server::AuthServer>();
  child_server->add_zone(child);
  network->attach(sim::NodeAddress::of("93.184.222.1"),
                  child_server->endpoint());

  auto root = std::make_shared<zone::Zone>(root_name);
  dns::SoaRdata root_soa;
  root_soa.mname = Name::of("a.root-servers.net");
  root_soa.rname = root_name;
  root->add(root_name, RRType::SOA, root_soa);
  root->add(root_name, RRType::NS,
            dns::NsRdata{Name::of("a.root-servers.net")});
  root->add(Name::of("a.root-servers.net"), RRType::A,
            dns::ARdata{*dns::Ipv4Address::parse("198.41.0.4")});
  root->add(child_name, RRType::NS, dns::NsRdata{Name::of("ns1.nsec.test")});
  root->add(Name::of("ns1.nsec.test"), RRType::A,
            dns::ARdata{*dns::Ipv4Address::parse("93.184.222.1")});
  for (const auto& ds : zone::ds_records(child_name, child_keys)) {
    root->add(child_name, RRType::DS, ds);
  }
  const auto root_keys = zone::make_zone_keys(root_name);
  zone::sign_zone(*root, root_keys, nsec_policy());
  auto root_server = std::make_shared<server::AuthServer>();
  root_server->add_zone(root);
  network->attach(sim::NodeAddress::of("198.41.0.4"),
                  root_server->endpoint());

  resolver::RecursiveResolver resolver(
      network, resolver::profile_cloudflare(),
      {sim::NodeAddress::of("198.41.0.4")}, root_keys.ksk.dnskey, {});

  // Positive, secure.
  const auto positive = resolver.resolve(child_name, RRType::A);
  EXPECT_EQ(positive.rcode, dns::RCode::NOERROR);
  EXPECT_EQ(positive.security, Security::Secure);
  EXPECT_TRUE(positive.errors.empty());

  // NXDOMAIN with a validated flat-NSEC proof.
  const auto negative =
      resolver.resolve(Name::of("missing.nsec.test"), RRType::A);
  EXPECT_EQ(negative.rcode, dns::RCode::NXDOMAIN);
  EXPECT_EQ(negative.security, Security::Secure);
  EXPECT_TRUE(negative.errors.empty());
}

}  // namespace
