// Crypto substrate tests: FIPS 180-4 vectors for SHA-1/SHA-256/SHA-384,
// RFC 4231 HMAC vectors, RFC 4648 encodings, and streaming/one-shot
// equivalence properties.
#include <gtest/gtest.h>

#include "crypto/encoding.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha2.hpp"

namespace {

using namespace ede::crypto;

template <typename Digest>
std::string hex(const Digest& digest) {
  return to_hex({digest.data(), digest.size()});
}

TEST(Sha1, EmptyInput) {
  EXPECT_EQ(hex(Sha1::hash({})), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(hex(Sha1::hash(as_bytes("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(hex(Sha1::hash(as_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionA) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(as_bytes(chunk));
  EXPECT_EQ(hex(h.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha256, EmptyInput) {
  EXPECT_EQ(hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex(Sha256::hash(as_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex(Sha256::hash(as_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha384, Abc) {
  EXPECT_EQ(hex(Sha384::hash(as_bytes("abc"))),
            "cb00753f45a35e8bb5a03d699ac65007272c32ab0eded1631a8b605a43ff5bed"
            "8086072ba1e7cc2358baeca134c825a7");
}

TEST(Sha384, EmptyInput) {
  EXPECT_EQ(hex(Sha384::hash({})),
            "38b060a751ac96384cd9327eb1b1e36a21fdb71114be07434c0cc7bf63f6e1da"
            "274edebfe76f65fbd51ad2f14898b95b");
}

// Streaming updates must agree with one-shot hashing regardless of how the
// input is chunked.
class StreamingEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamingEquivalence, Sha256ChunkedMatchesOneShot) {
  const std::size_t chunk_size = GetParam();
  Xoshiro256 rng(1234);
  Bytes data(4096);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());

  Sha256 h;
  for (std::size_t offset = 0; offset < data.size(); offset += chunk_size) {
    const std::size_t take = std::min(chunk_size, data.size() - offset);
    h.update({data.data() + offset, take});
  }
  EXPECT_EQ(h.finish(), Sha256::hash(data));
}

TEST_P(StreamingEquivalence, Sha1ChunkedMatchesOneShot) {
  const std::size_t chunk_size = GetParam();
  Xoshiro256 rng(99);
  Bytes data(2048);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());

  Sha1 h;
  for (std::size_t offset = 0; offset < data.size(); offset += chunk_size) {
    const std::size_t take = std::min(chunk_size, data.size() - offset);
    h.update({data.data() + offset, take});
  }
  EXPECT_EQ(h.finish(), Sha1::hash(data));
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, StreamingEquivalence,
                         ::testing::Values(1, 3, 7, 63, 64, 65, 127, 128,
                                           1000));

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto mac = Hmac<Sha256>::mac(key, as_bytes("Hi There"));
  EXPECT_EQ(hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const auto mac = Hmac<Sha256>::mac(
      as_bytes("Jefe"), as_bytes("what do ya want for nothing?"));
  EXPECT_EQ(hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const auto mac = Hmac<Sha256>::mac(
      key, as_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Encoding, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xcd, 0xef, 0xff};
  EXPECT_EQ(to_hex(data), "0001abcdefff");
  EXPECT_EQ(from_hex("0001abcdefff").value(), data);
  EXPECT_EQ(from_hex("0001ABCDEFFF").value(), data);
}

TEST(Encoding, HexRejectsOddLengthAndGarbage) {
  EXPECT_FALSE(from_hex("abc").has_value());
  EXPECT_FALSE(from_hex("zz").has_value());
}

TEST(Encoding, Base64Rfc4648Vectors) {
  EXPECT_EQ(to_base64(as_bytes("")), "");
  EXPECT_EQ(to_base64(as_bytes("f")), "Zg==");
  EXPECT_EQ(to_base64(as_bytes("fo")), "Zm8=");
  EXPECT_EQ(to_base64(as_bytes("foo")), "Zm9v");
  EXPECT_EQ(to_base64(as_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(to_base64(as_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(to_base64(as_bytes("foobar")), "Zm9vYmFy");
}

TEST(Encoding, Base64Decode) {
  EXPECT_EQ(from_base64("Zm9vYmFy").value(), to_bytes("foobar"));
  EXPECT_EQ(from_base64("Zg==").value(), to_bytes("f"));
  EXPECT_FALSE(from_base64("Zg=").has_value());   // bad length
  EXPECT_FALSE(from_base64("Z===").has_value());  // over-padded
  EXPECT_FALSE(from_base64("Zg==Zg==").has_value());  // data after padding
}

TEST(Encoding, Base32HexRfc4648Vectors) {
  // RFC 4648 §10, lowercase and unpadded (the NSEC3 convention).
  EXPECT_EQ(to_base32hex(as_bytes("")), "");
  EXPECT_EQ(to_base32hex(as_bytes("f")), "co");
  EXPECT_EQ(to_base32hex(as_bytes("fo")), "cpng");
  EXPECT_EQ(to_base32hex(as_bytes("foo")), "cpnmu");
  EXPECT_EQ(to_base32hex(as_bytes("foob")), "cpnmuog");
  EXPECT_EQ(to_base32hex(as_bytes("fooba")), "cpnmuoj1");
  EXPECT_EQ(to_base32hex(as_bytes("foobar")), "cpnmuoj1e8");
}

TEST(Encoding, Base32HexRoundTrip) {
  Xoshiro256 rng(7);
  for (int size = 0; size < 64; ++size) {
    Bytes data(static_cast<std::size_t>(size));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const auto decoded = from_base32hex(to_base32hex(data));
    ASSERT_TRUE(decoded.has_value()) << "size " << size;
    EXPECT_EQ(*decoded, data) << "size " << size;
  }
}

TEST(Encoding, Base32HexRejectsNonZeroPaddingBits) {
  // "c1" decodes to one byte plus a non-zero trailing bit -> invalid.
  EXPECT_FALSE(from_base32hex("c1").has_value());
  EXPECT_FALSE(from_base32hex("!!").has_value());
}

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, UniformStaysInRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
