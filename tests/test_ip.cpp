// IP address parsing/formatting and IANA special-purpose classification —
// the substrate behind testbed groups 6/7 (invalid glue) and the simulated
// network's reachability model.
#include <gtest/gtest.h>

#include "dnscore/ip.hpp"

namespace {

using namespace ede::dns;

TEST(Ipv4, ParseAndFormat) {
  const auto addr = Ipv4Address::parse("192.0.2.1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->to_string(), "192.0.2.1");
  EXPECT_EQ(addr->octets()[0], 192);
  EXPECT_EQ(addr->value(), 0xc0000201u);
}

TEST(Ipv4, RejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.x").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 ").has_value());
}

TEST(Ipv6, ParseCanonicalForms) {
  EXPECT_EQ(Ipv6Address::parse("::")->to_string(), "::");
  EXPECT_EQ(Ipv6Address::parse("::1")->to_string(), "::1");
  EXPECT_EQ(Ipv6Address::parse("2001:db8::1")->to_string(), "2001:db8::1");
  EXPECT_EQ(Ipv6Address::parse("2001:DB8::1")->to_string(), "2001:db8::1");
  EXPECT_EQ(Ipv6Address::parse("fe80::")->to_string(), "fe80::");
  EXPECT_EQ(
      Ipv6Address::parse("2001:db8:0:0:1:0:0:1")->to_string(),
      "2001:db8::1:0:0:1");  // longest zero run compressed (RFC 5952)
  EXPECT_EQ(Ipv6Address::parse("1:2:3:4:5:6:7:8")->to_string(),
            "1:2:3:4:5:6:7:8");
}

TEST(Ipv6, ParseEmbeddedIpv4) {
  const auto mapped = Ipv6Address::parse("::ffff:192.0.2.1");
  ASSERT_TRUE(mapped.has_value());
  EXPECT_EQ(mapped->octets()[10], 0xff);
  EXPECT_EQ(mapped->octets()[12], 192);
}

TEST(Ipv6, RejectsMalformed) {
  EXPECT_FALSE(Ipv6Address::parse("").has_value());
  EXPECT_FALSE(Ipv6Address::parse(":::").has_value());
  EXPECT_FALSE(Ipv6Address::parse("1::2::3").has_value());
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7").has_value());
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8:9").has_value());
  EXPECT_FALSE(Ipv6Address::parse("12345::").has_value());
  EXPECT_FALSE(Ipv6Address::parse("g::1").has_value());
}

TEST(Ipv6, RoundTripThroughText) {
  for (const char* text :
       {"::", "::1", "2001:db8::8:800:200c:417a", "ff01::101",
        "fe80::204:61ff:fe9d:f156", "64:ff9b::c000:201"}) {
    const auto parsed = Ipv6Address::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    const auto reparsed = Ipv6Address::parse(parsed->to_string());
    ASSERT_TRUE(reparsed.has_value()) << parsed->to_string();
    EXPECT_EQ(*parsed, *reparsed) << text;
  }
}

struct ScopeCase {
  const char* address;
  AddressScope scope;
};

class V4Classification : public ::testing::TestWithParam<ScopeCase> {};

TEST_P(V4Classification, MatchesIanaRegistry) {
  const auto addr = Ipv4Address::parse(GetParam().address);
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(classify(*addr), GetParam().scope) << GetParam().address;
}

INSTANTIATE_TEST_SUITE_P(
    SpecialPurpose, V4Classification,
    ::testing::Values(
        ScopeCase{"0.0.0.0", AddressScope::ThisHost},
        ScopeCase{"0.255.255.255", AddressScope::ThisHost},
        ScopeCase{"10.0.0.1", AddressScope::Private},
        ScopeCase{"100.64.0.1", AddressScope::Private},
        ScopeCase{"127.0.0.1", AddressScope::Loopback},
        ScopeCase{"169.254.0.1", AddressScope::LinkLocal},
        ScopeCase{"172.16.0.1", AddressScope::Private},
        ScopeCase{"172.32.0.1", AddressScope::GlobalUnicast},
        ScopeCase{"192.0.0.1", AddressScope::Reserved},
        ScopeCase{"192.0.2.1", AddressScope::Documentation},
        ScopeCase{"192.168.255.255", AddressScope::Private},
        ScopeCase{"198.18.0.1", AddressScope::Reserved},
        ScopeCase{"198.51.100.7", AddressScope::Documentation},
        ScopeCase{"203.0.113.9", AddressScope::Documentation},
        ScopeCase{"224.0.0.1", AddressScope::Multicast},
        ScopeCase{"240.0.0.1", AddressScope::Reserved},
        ScopeCase{"8.8.8.8", AddressScope::GlobalUnicast},
        ScopeCase{"198.41.0.4", AddressScope::GlobalUnicast}));

class V6Classification : public ::testing::TestWithParam<ScopeCase> {};

TEST_P(V6Classification, MatchesIanaRegistry) {
  const auto addr = Ipv6Address::parse(GetParam().address);
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(classify(*addr), GetParam().scope) << GetParam().address;
}

INSTANTIATE_TEST_SUITE_P(
    SpecialPurpose, V6Classification,
    ::testing::Values(
        ScopeCase{"::", AddressScope::ThisHost},
        ScopeCase{"::1", AddressScope::Loopback},
        ScopeCase{"::ffff:192.0.2.1", AddressScope::Mapped},
        ScopeCase{"::192.0.2.1", AddressScope::Mapped},
        ScopeCase{"64:ff9b::c000:201", AddressScope::Nat64},
        ScopeCase{"100::1", AddressScope::Reserved},
        ScopeCase{"2001:db8::1", AddressScope::Documentation},
        ScopeCase{"fc00::1", AddressScope::Private},
        ScopeCase{"fd12:3456::1", AddressScope::Private},
        ScopeCase{"fe80::1", AddressScope::LinkLocal},
        ScopeCase{"ff02::1", AddressScope::Multicast},
        ScopeCase{"2606:4700::1111", AddressScope::GlobalUnicast}));

TEST(Scope, OnlyGlobalUnicastIsRoutable) {
  EXPECT_TRUE(is_routable(AddressScope::GlobalUnicast));
  for (const auto scope :
       {AddressScope::Private, AddressScope::Loopback, AddressScope::LinkLocal,
        AddressScope::ThisHost, AddressScope::Documentation,
        AddressScope::Reserved, AddressScope::Multicast, AddressScope::Mapped,
        AddressScope::Nat64}) {
    EXPECT_FALSE(is_routable(scope)) << to_string(scope);
  }
}

TEST(Prefix, V4PrefixMatching) {
  const auto addr = *Ipv4Address::parse("10.1.2.3");
  EXPECT_TRUE(addr.in_prefix(*Ipv4Address::parse("10.0.0.0"), 8));
  EXPECT_FALSE(addr.in_prefix(*Ipv4Address::parse("11.0.0.0"), 8));
  EXPECT_TRUE(addr.in_prefix(*Ipv4Address::parse("0.0.0.0"), 0));
  EXPECT_TRUE(addr.in_prefix(addr, 32));
}

TEST(Prefix, V6PrefixMatching) {
  const auto addr = *Ipv6Address::parse("2001:db8:abcd::1");
  EXPECT_TRUE(addr.in_prefix(*Ipv6Address::parse("2001:db8::"), 32));
  EXPECT_FALSE(addr.in_prefix(*Ipv6Address::parse("2001:db9::"), 32));
  EXPECT_TRUE(addr.in_prefix(*Ipv6Address::parse("2000::"), 3));
}

}  // namespace
