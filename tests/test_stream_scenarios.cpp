// The truncation / DoTCP scenario family end to end: every stream case
// resolved through all seven vendor profiles must match the calibrated
// expected_stream() table — rcode, validation state, and EDE codes — and
// the hardening counters must tell the same story (TC seen, fallbacks
// attempted, connects failing vs streams dying).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "resolver/resolver.hpp"
#include "testbed/expected.hpp"
#include "testbed/testbed.hpp"

namespace {

using ede::resolver::HardeningStats;
using ede::resolver::RecursiveResolver;
using ede::testbed::StreamCaseSpec;
using ede::testbed::StreamFault;
using ede::testbed::Testbed;

struct StreamWorld {
  StreamWorld()
      : network(std::make_shared<ede::sim::Network>(
            std::make_shared<ede::sim::Clock>())),
        testbed(network, {.stream_family = true}) {}

  std::shared_ptr<ede::sim::Network> network;
  Testbed testbed;
};

StreamWorld& world() {
  static StreamWorld instance;
  return instance;
}

std::vector<std::uint16_t> sorted_codes(const ede::resolver::Outcome& o) {
  std::vector<std::uint16_t> codes;
  for (const auto& error : o.errors)
    codes.push_back(static_cast<std::uint16_t>(error.code));
  std::sort(codes.begin(), codes.end());
  codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
  return codes;
}

class StreamRow : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamRow, MatchesTheCalibratedTable) {
  auto& w = world();
  const auto& spec = w.testbed.stream_case_specs()[GetParam()];
  const auto& expected = ede::testbed::expected_stream()[GetParam()];
  ASSERT_EQ(expected.label, spec.label) << "row tables out of sync";

  const auto qname = w.testbed.stream_query_name(spec);
  const auto profiles = ede::resolver::all_profiles();
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    ede::resolver::ResolverOptions options;
    options.edns_udp_payload = spec.resolver_payload;
    auto resolver = w.testbed.make_resolver(profiles[p], options);
    const auto outcome = resolver.resolve(qname, ede::dns::RRType::TXT);

    const auto want_rcode = expected.rcode == "NOERROR"
                                ? ede::dns::RCode::NOERROR
                                : ede::dns::RCode::SERVFAIL;
    EXPECT_EQ(outcome.rcode, want_rcode)
        << spec.label << " via " << profiles[p].name;
    EXPECT_EQ(sorted_codes(outcome), expected.codes[p])
        << spec.label << " via " << profiles[p].name;
    if (spec.expect_success) {
      EXPECT_EQ(outcome.security, ede::dnssec::Security::Secure)
          << spec.label << " via " << profiles[p].name;
      EXPECT_FALSE(outcome.response.answer.empty())
          << spec.label << " via " << profiles[p].name;
    }
  }
}

std::string row_name(const ::testing::TestParamInfo<std::size_t>& info) {
  std::string label = ede::testbed::expected_stream()[info.param].label;
  for (char& c : label) {
    if (c == '-') c = '_';
  }
  return std::to_string(info.param + 1) + "_" + label;
}

INSTANTIATE_TEST_SUITE_P(AllCases, StreamRow,
                         ::testing::Range<std::size_t>(0, 10), row_name);

TEST(StreamScenarios, TablesAreInSync) {
  auto& w = world();
  ASSERT_EQ(w.testbed.stream_case_specs().size(), 10u);
  ASSERT_EQ(ede::testbed::expected_stream().size(), 10u);
  // The classic worlds must not grow stream cases implicitly.
  Testbed plain(std::make_shared<ede::sim::Network>(
      std::make_shared<ede::sim::Clock>()));
  EXPECT_TRUE(plain.stream_case_specs().empty());
  EXPECT_EQ(plain.cases().size(), 63u);
}

// The hardening counters distinguish the transport stories the EDE codes
// fold together: a refused connect vs a stream that died mid-answer.
TEST(StreamScenarios, HardeningCountersTellTheTransportStory) {
  auto& w = world();
  const auto resolve = [&](std::string_view label) {
    const auto& specs = w.testbed.stream_case_specs();
    const auto it = std::find_if(
        specs.begin(), specs.end(),
        [&](const StreamCaseSpec& s) { return s.label == label; });
    EXPECT_NE(it, specs.end());
    ede::resolver::ResolverOptions options;
    options.edns_udp_payload = it->resolver_payload;
    auto resolver =
        w.testbed.make_resolver(ede::resolver::profile_cloudflare(), options);
    (void)resolver.resolve(w.testbed.stream_query_name(*it),
                           ede::dns::RRType::TXT);
    return resolver.hardening_stats();
  };

  const HardeningStats clean = resolve("tc-clean-fallback");
  EXPECT_GE(clean.tc_seen, 1u);
  EXPECT_GE(clean.tcp_fallbacks, 1u);
  EXPECT_GE(clean.tcp_success, 1u);
  EXPECT_EQ(clean.tcp_connect_failures, 0u);
  EXPECT_EQ(clean.tcp_stream_failures, 0u);

  const HardeningStats refused = resolve("tcp-refused");
  EXPECT_GE(refused.tc_seen, 1u);
  EXPECT_GE(refused.tcp_connect_failures, 1u);
  EXPECT_EQ(refused.tcp_success, 0u);

  const HardeningStats stalled = resolve("tcp-stall");
  EXPECT_GE(stalled.tcp_stream_failures, 1u);
  EXPECT_EQ(stalled.tcp_success, 0u);

  const HardeningStats midclose = resolve("tcp-midstream-close");
  EXPECT_GE(midclose.tcp_stream_failures, 1u);
  EXPECT_EQ(midclose.tcp_success, 0u);

  // FragDrop never produces a TC bit: the answer just vanishes in flight,
  // so no DoTCP fallback is ever attempted.
  const HardeningStats fragged = resolve("frag-drop-dnssec");
  EXPECT_EQ(fragged.tc_seen, 0u);
  EXPECT_EQ(fragged.tcp_fallbacks, 0u);
}

// The buffer-size sweep: the same ~2 KB signed answer, three resolver
// advertisements. 512 and 1232 truncate and fall back; 4096 fits over UDP
// and never touches the stream.
TEST(StreamScenarios, EdnsBufferSizeSweep) {
  auto& w = world();
  const auto run = [&](std::string_view label, std::uint16_t payload) {
    ede::resolver::ResolverOptions options;
    options.edns_udp_payload = payload;
    const auto& specs = w.testbed.stream_case_specs();
    const auto it = std::find_if(
        specs.begin(), specs.end(),
        [&](const StreamCaseSpec& s) { return s.label == label; });
    EXPECT_NE(it, specs.end());
    auto resolver = w.testbed.make_resolver(
        ede::resolver::profile_cloudflare(), options);
    const auto outcome =
        resolver.resolve(w.testbed.stream_query_name(*it),
                         ede::dns::RRType::TXT);
    EXPECT_EQ(outcome.rcode, ede::dns::RCode::NOERROR) << label;
    EXPECT_EQ(outcome.security, ede::dnssec::Security::Secure) << label;
    return resolver.hardening_stats();
  };

  EXPECT_GE(run("edns-512", 512).tcp_success, 1u);
  EXPECT_GE(run("edns-1232", 1'232).tcp_success, 1u);
  const HardeningStats big = run("edns-4096", 4'096);
  EXPECT_EQ(big.tc_seen, 0u);
  EXPECT_EQ(big.tcp_fallbacks, 0u);
}

}  // namespace
