// Zone container and zone-signer tests, including whole-zone invariants:
// every authoritative RRset signed, closed NSEC3 chain, correct DS.
#include <gtest/gtest.h>

#include "crypto/encoding.hpp"
#include "dnssec/nsec3.hpp"
#include "zone/signer.hpp"
#include "zone/zone.hpp"

namespace {

using namespace ede::zone;
using namespace ede::dns;

Zone make_basic_zone() {
  Zone zone(Name::of("example.com"));
  SoaRdata soa;
  soa.mname = Name::of("ns1.example.com");
  soa.rname = Name::of("hostmaster.example.com");
  soa.minimum = 300;
  zone.add(Name::of("example.com"), RRType::SOA, soa);
  zone.add(Name::of("example.com"), RRType::NS,
           NsRdata{Name::of("ns1.example.com")});
  zone.add(Name::of("ns1.example.com"), RRType::A,
           ARdata{*Ipv4Address::parse("192.0.2.53")});
  zone.add(Name::of("example.com"), RRType::A,
           ARdata{*Ipv4Address::parse("192.0.2.1")});
  zone.add(Name::of("www.example.com"), RRType::A,
           ARdata{*Ipv4Address::parse("192.0.2.2")});
  // Delegation with glue.
  zone.add(Name::of("child.example.com"), RRType::NS,
           NsRdata{Name::of("ns1.child.example.com")});
  zone.add(Name::of("ns1.child.example.com"), RRType::A,
           ARdata{*Ipv4Address::parse("192.0.2.99")});
  return zone;
}

TEST(Zone, AddMergesIntoRrsets) {
  Zone zone(Name::of("example.com"));
  zone.add(Name::of("example.com"), RRType::A,
           ARdata{*Ipv4Address::parse("192.0.2.1")});
  zone.add(Name::of("example.com"), RRType::A,
           ARdata{*Ipv4Address::parse("192.0.2.2")});
  const auto* rrset = zone.find(Name::of("example.com"), RRType::A);
  ASSERT_NE(rrset, nullptr);
  EXPECT_EQ(rrset->rdatas.size(), 2u);
}

TEST(Zone, FindIsTypeAndNameExact) {
  const Zone zone = make_basic_zone();
  EXPECT_NE(zone.find(Name::of("www.example.com"), RRType::A), nullptr);
  EXPECT_EQ(zone.find(Name::of("www.example.com"), RRType::AAAA), nullptr);
  EXPECT_EQ(zone.find(Name::of("nope.example.com"), RRType::A), nullptr);
  EXPECT_NE(zone.find(Name::of("WWW.EXAMPLE.COM"), RRType::A), nullptr);
}

TEST(Zone, RemoveDeletesRrset) {
  Zone zone = make_basic_zone();
  EXPECT_TRUE(zone.remove(Name::of("www.example.com"), RRType::A));
  EXPECT_FALSE(zone.remove(Name::of("www.example.com"), RRType::A));
  EXPECT_EQ(zone.find(Name::of("www.example.com"), RRType::A), nullptr);
}

TEST(Zone, NameExistsIncludesEmptyNonTerminals) {
  Zone zone(Name::of("example.com"));
  zone.add(Name::of("a.b.example.com"), RRType::A,
           ARdata{*Ipv4Address::parse("192.0.2.1")});
  EXPECT_TRUE(zone.name_exists(Name::of("a.b.example.com")));
  EXPECT_TRUE(zone.name_exists(Name::of("b.example.com")));  // ENT
  EXPECT_FALSE(zone.name_exists(Name::of("c.example.com")));
}

TEST(Zone, DelegationLookup) {
  const Zone zone = make_basic_zone();
  EXPECT_FALSE(zone.delegation_for(Name::of("example.com")).has_value());
  EXPECT_FALSE(zone.delegation_for(Name::of("www.example.com")).has_value());
  EXPECT_EQ(zone.delegation_for(Name::of("child.example.com")),
            Name::of("child.example.com"));
  EXPECT_EQ(zone.delegation_for(Name::of("deep.child.example.com")),
            Name::of("child.example.com"));
  EXPECT_EQ(zone.delegation_for(Name::of("ns1.child.example.com")),
            Name::of("child.example.com"));
}

TEST(Zone, AuthoritativeNamesExcludeOccludedGlue) {
  const Zone zone = make_basic_zone();
  const auto names = zone.authoritative_names();
  const auto has = [&](const char* text) {
    return std::find(names.begin(), names.end(), Name::of(text)) !=
           names.end();
  };
  EXPECT_TRUE(has("example.com"));
  EXPECT_TRUE(has("www.example.com"));
  EXPECT_TRUE(has("child.example.com"));        // the cut itself
  EXPECT_FALSE(has("ns1.child.example.com"));   // occluded glue
}

TEST(Zone, RemoveSignaturesCovering) {
  Zone zone = make_basic_zone();
  const auto keys = make_zone_keys(zone.origin());
  sign_zone(zone, keys, {});
  EXPECT_FALSE(zone.signatures(zone.origin(), RRType::A).empty());
  EXPECT_GT(zone.remove_signatures_covering(RRType::A), 0u);
  EXPECT_TRUE(zone.signatures(zone.origin(), RRType::A).empty());
  // Other signatures survive.
  EXPECT_FALSE(zone.signatures(zone.origin(), RRType::SOA).empty());
}

TEST(Zone, RemoveAllSignatures) {
  Zone zone = make_basic_zone();
  sign_zone(zone, make_zone_keys(zone.origin()), {});
  EXPECT_GT(zone.remove_all_signatures(), 0u);
  for (const auto& name : zone.names()) {
    EXPECT_EQ(zone.find(name, RRType::RRSIG), nullptr);
  }
}

// --- signed-zone invariants (property-style checks) ---------------------

class SignedZone : public ::testing::Test {
 protected:
  void SetUp() override {
    zone_ = std::make_unique<Zone>(make_basic_zone());
    keys_ = make_zone_keys(zone_->origin());
    sign_zone(*zone_, keys_, policy_);
  }

  std::unique_ptr<Zone> zone_;
  ZoneKeys keys_;
  SigningPolicy policy_;
};

TEST_F(SignedZone, DnskeyRrsetInstalled) {
  const auto* dnskey = zone_->find(zone_->origin(), RRType::DNSKEY);
  ASSERT_NE(dnskey, nullptr);
  EXPECT_EQ(dnskey->rdatas.size(), 2u);  // KSK + ZSK
}

TEST_F(SignedZone, EveryAuthoritativeRrsetIsSigned) {
  for (const auto& name : zone_->authoritative_names()) {
    const auto cut = zone_->delegation_for(name);
    for (const auto* rrset : zone_->at(name)) {
      if (rrset->type == RRType::RRSIG) continue;
      if (cut.has_value() && rrset->type != RRType::DS) continue;  // NS at cut
      EXPECT_FALSE(zone_->signatures(name, rrset->type).empty())
          << name.to_string() << " " << to_string(rrset->type);
    }
  }
}

TEST_F(SignedZone, GlueAndDelegationNsAreNotSigned) {
  EXPECT_TRUE(
      zone_->signatures(Name::of("child.example.com"), RRType::NS).empty());
  EXPECT_TRUE(
      zone_->signatures(Name::of("ns1.child.example.com"), RRType::A).empty());
}

TEST_F(SignedZone, SignaturesVerifyUnderTheZoneKeys) {
  using ede::dnssec::verify_rrset;
  for (const auto& name : zone_->authoritative_names()) {
    for (const auto* rrset : zone_->at(name)) {
      if (rrset->type == RRType::RRSIG) continue;
      for (const auto& sig : zone_->signatures(name, rrset->type)) {
        const bool by_ksk = sig.key_tag == keys_.ksk.tag();
        const auto& key = by_ksk ? keys_.ksk.dnskey : keys_.zsk.dnskey;
        EXPECT_TRUE(verify_rrset(*rrset, sig, key))
            << name.to_string() << " " << to_string(rrset->type);
      }
    }
  }
}

TEST_F(SignedZone, DnskeySignedByBothKeysUnderDefaultPolicy) {
  const auto sigs = zone_->signatures(zone_->origin(), RRType::DNSKEY);
  ASSERT_EQ(sigs.size(), 2u);
}

TEST_F(SignedZone, Nsec3ChainIsClosedAndOrdered) {
  // Collect the NSEC3 records; the owner hashes sorted must match the
  // next-pointers as one closed cycle.
  std::vector<std::pair<ede::crypto::Bytes, ede::crypto::Bytes>> links;
  for (const auto& name : zone_->names()) {
    const auto* rrset = zone_->find(name, RRType::NSEC3);
    if (rrset == nullptr) continue;
    for (const auto& rd : rrset->rdatas) {
      const auto& n3 = std::get<Nsec3Rdata>(rd);
      const auto owner_hash =
          ede::crypto::from_base32hex(name.labels().front());
      ASSERT_TRUE(owner_hash.has_value());
      links.emplace_back(*owner_hash, n3.next_hashed_owner);
    }
  }
  ASSERT_GE(links.size(), 3u);
  std::sort(links.begin(), links.end());
  for (std::size_t i = 0; i < links.size(); ++i) {
    const auto& expected_next = links[(i + 1) % links.size()].first;
    EXPECT_EQ(links[i].second, expected_next) << "broken chain at " << i;
  }
}

TEST_F(SignedZone, Nsec3BitmapsReflectPresentTypes) {
  const auto owner = ede::dnssec::nsec3_owner(
      zone_->origin(), zone_->origin(), policy_.nsec3_salt,
      policy_.nsec3_iterations);
  const auto* rrset = zone_->find(owner, RRType::NSEC3);
  ASSERT_NE(rrset, nullptr);
  const auto& n3 = std::get<Nsec3Rdata>(rrset->rdatas.front());
  for (const auto type : {RRType::SOA, RRType::NS, RRType::A, RRType::DNSKEY,
                          RRType::NSEC3PARAM, RRType::RRSIG}) {
    EXPECT_TRUE(n3.types.contains(type)) << to_string(type);
  }
  EXPECT_FALSE(n3.types.contains(RRType::MX));
}

TEST_F(SignedZone, DelegationWithoutDsHasNoRrsigBitInNsec3) {
  const auto owner = ede::dnssec::nsec3_owner(
      Name::of("child.example.com"), zone_->origin(), policy_.nsec3_salt,
      policy_.nsec3_iterations);
  const auto* rrset = zone_->find(owner, RRType::NSEC3);
  ASSERT_NE(rrset, nullptr);
  const auto& n3 = std::get<Nsec3Rdata>(rrset->rdatas.front());
  EXPECT_TRUE(n3.types.contains(RRType::NS));
  EXPECT_FALSE(n3.types.contains(RRType::DS));
  EXPECT_FALSE(n3.types.contains(RRType::RRSIG));
}

TEST_F(SignedZone, DsRecordsMatchTheKsk) {
  const auto ds_set = ds_records(zone_->origin(), keys_);
  ASSERT_EQ(ds_set.size(), 1u);
  EXPECT_TRUE(ede::dnssec::ds_matches(zone_->origin(), ds_set.front(),
                                      keys_.ksk.dnskey));
  EXPECT_FALSE(ede::dnssec::ds_matches(zone_->origin(), ds_set.front(),
                                       keys_.zsk.dnskey));
}

}  // namespace
