// Golden-bytes fingerprint of the wire codec.
//
// Runs the full Table 4 matrix (63 testbed cases x 7 vendor profiles) with
// a Network wire tap and hashes every packet that crosses the simulated
// wire — every query the resolvers serialize and every response the
// authoritative servers serialize, compression choices included. The
// expected digest was recorded from the seed codec (vector-of-strings
// Name, map-based compression); any refactor of the codec data model must
// keep the stream byte-identical so the paper's Table 4 / §4.2 aggregates
// are provably unchanged.
#include <gtest/gtest.h>

#include "crypto/encoding.hpp"
#include "crypto/sha2.hpp"
#include "resolver/resolver.hpp"
#include "testbed/testbed.hpp"

namespace {

// Recorded from the seed codec at PR 3 (see file comment). If this test
// fails after an intentional wire-format change, re-record by running the
// test and copying the digest printed in the failure message — but for a
// pure performance refactor a mismatch means the refactor changed bytes.
//
// Re-recorded at PR 6: the fake TC retry (a second UDP exchange with a
// maximum-size EDNS advertisement) became a genuine DoTCP fallback, so
// truncated answers' second leg moved off the datagram tap and TC
// responses are now honestly truncated. The UDP codec itself is
// unchanged; the *transport dialogue* is what intentionally differs.
constexpr const char* kExpectedDigest =
    "54789e2ce796fe43e48306fe9108272fbd3affe8ba3ef912cf497e3c3ce152a1";

TEST(CodecGolden, Table4MatrixWireBytesUnchanged) {
  auto clock = std::make_shared<ede::sim::Clock>();
  auto network = std::make_shared<ede::sim::Network>(clock);
  ede::testbed::Testbed testbed(network);

  ede::crypto::Sha256 stream;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  network->set_tap([&](ede::crypto::BytesView query,
                       const ede::sim::SendResult& result) {
    ++packets;
    bytes += query.size() + result.response.size();
    stream.update(query);
    const auto status = static_cast<std::uint8_t>(result.status);
    stream.update({&status, 1});
    stream.update(result.response);
  });

  const auto profiles = ede::resolver::all_profiles();
  std::vector<ede::resolver::RecursiveResolver> resolvers;
  resolvers.reserve(profiles.size());
  for (const auto& profile : profiles)
    resolvers.push_back(testbed.make_resolver(profile));

  for (const auto& spec : testbed.cases()) {
    const auto qname = testbed.query_name(spec);
    for (auto& resolver : resolvers)
      (void)resolver.resolve(qname, ede::dns::RRType::A);
  }

  const auto digest = stream.finish();
  EXPECT_EQ(ede::crypto::to_hex({digest.data(), digest.size()}),
            kExpectedDigest)
      << "codec wire bytes changed (" << packets << " packets, " << bytes
      << " bytes hashed)";
}

}  // namespace
