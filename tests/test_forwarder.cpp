// Forwarder tests: the full stub → forwarder → recursive → authoritative
// chain over the simulated network, EDE forwarding (and stripping), the
// forwarder's own cache-layer codes, and the resolver-as-endpoint shim.
#include <gtest/gtest.h>

#include "edns/ede.hpp"
#include "edns/edns.hpp"
#include "resolver/forwarder.hpp"
#include "resolver/resolver.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace ede;
using resolver::Forwarder;
using resolver::ForwarderOptions;

class ForwarderChain : public ::testing::Test {
 protected:
  ForwarderChain()
      : clock_(std::make_shared<sim::Clock>()),
        network_(std::make_shared<sim::Network>(clock_)),
        testbed_(network_) {
    // A recursive resolver living at 198.51.200.53.
    recursive_ = std::make_shared<resolver::RecursiveResolver>(
        testbed_.make_resolver(resolver::profile_cloudflare()));
    network_->attach(sim::NodeAddress::of("198.51.200.53"),
                     resolver::make_resolver_endpoint(recursive_));
  }

  Forwarder make_forwarder(ForwarderOptions options = {}) {
    return Forwarder(network_, sim::NodeAddress::of("198.51.200.99"),
                     {sim::NodeAddress::of("198.51.200.53")}, options);
  }

  static dns::Message client_query(std::string_view name) {
    return dns::make_query(77, dns::Name::of(name), dns::RRType::A,
                           /*recursion_desired=*/true);
  }

  std::shared_ptr<sim::Clock> clock_;
  std::shared_ptr<sim::Network> network_;
  testbed::Testbed testbed_;
  std::shared_ptr<resolver::RecursiveResolver> recursive_;
};

TEST_F(ForwarderChain, ForwardsPositiveAnswers) {
  auto forwarder = make_forwarder();
  const auto response =
      forwarder.handle(client_query("valid.extended-dns-errors.com"));
  EXPECT_EQ(response.header.rcode, dns::RCode::NOERROR);
  EXPECT_EQ(response.header.id, 77);
  EXPECT_TRUE(response.header.ad);  // upstream validated
  EXPECT_FALSE(response.answer.empty());
}

TEST_F(ForwarderChain, ForwardsExtendedErrorsFromUpstream) {
  auto forwarder = make_forwarder();
  const auto response =
      forwarder.handle(client_query("ds-bad-tag.extended-dns-errors.com"));
  EXPECT_EQ(response.header.rcode, dns::RCode::SERVFAIL);
  const auto errors = edns::get_extended_errors(response);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors.front().code, edns::EdeCode::DnskeyMissing);
}

TEST_F(ForwarderChain, StrippingModeLosesTheDiagnosis) {
  ForwarderOptions options;
  options.forward_extended_errors = false;
  auto forwarder = make_forwarder(options);
  const auto response =
      forwarder.handle(client_query("ds-bad-tag.extended-dns-errors.com"));
  EXPECT_EQ(response.header.rcode, dns::RCode::SERVFAIL);
  EXPECT_TRUE(edns::get_extended_errors(response).empty());
}

TEST_F(ForwarderChain, AnswersFromCacheSecondTime) {
  auto forwarder = make_forwarder();
  (void)forwarder.handle(client_query("valid.extended-dns-errors.com"));
  const auto sent = network_->stats().packets_sent;
  const auto response =
      forwarder.handle(client_query("valid.extended-dns-errors.com"));
  EXPECT_EQ(network_->stats().packets_sent, sent);  // no upstream traffic
  EXPECT_EQ(response.header.rcode, dns::RCode::NOERROR);
  EXPECT_FALSE(response.answer.empty());
}

TEST_F(ForwarderChain, CachedServfailGetsCode13) {
  auto forwarder = make_forwarder();
  (void)forwarder.handle(client_query("bad-zsk.extended-dns-errors.com"));
  const auto response =
      forwarder.handle(client_query("bad-zsk.extended-dns-errors.com"));
  EXPECT_EQ(response.header.rcode, dns::RCode::SERVFAIL);
  const auto errors = edns::get_extended_errors(response);
  ASSERT_FALSE(errors.empty());
  EXPECT_EQ(errors.front().code, edns::EdeCode::CachedError);
}

TEST_F(ForwarderChain, StaleServiceWhenUpstreamDies) {
  auto forwarder = make_forwarder();
  (void)forwarder.handle(client_query("valid.extended-dns-errors.com"));
  network_->detach(sim::NodeAddress::of("198.51.200.53"));
  clock_->advance(3 * 3600);
  const auto response =
      forwarder.handle(client_query("valid.extended-dns-errors.com"));
  EXPECT_EQ(response.header.rcode, dns::RCode::NOERROR);
  const auto errors = edns::get_extended_errors(response);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors.front().code, edns::EdeCode::StaleAnswer);
}

TEST_F(ForwarderChain, HonestFailureWithoutStaleState) {
  auto forwarder = make_forwarder();
  network_->detach(sim::NodeAddress::of("198.51.200.53"));
  const auto response =
      forwarder.handle(client_query("valid.extended-dns-errors.com"));
  EXPECT_EQ(response.header.rcode, dns::RCode::SERVFAIL);
  const auto errors = edns::get_extended_errors(response);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors.front().code, edns::EdeCode::NoReachableAuthority);
}

TEST_F(ForwarderChain, RefusesIterativeQueries) {
  auto forwarder = make_forwarder();
  auto query = dns::make_query(1, dns::Name::of("x.test"), dns::RRType::A,
                               /*recursion_desired=*/false);
  EXPECT_EQ(forwarder.handle(query).header.rcode, dns::RCode::REFUSED);
}

TEST_F(ForwarderChain, WholeChainOverTheWire) {
  // stub -> forwarder endpoint -> resolver endpoint -> authorities,
  // every hop in wire format.
  auto forwarder = std::make_shared<Forwarder>(
      network_, sim::NodeAddress::of("198.51.200.99"),
      std::vector<sim::NodeAddress>{sim::NodeAddress::of("198.51.200.53")},
      ForwarderOptions{});
  network_->attach(sim::NodeAddress::of("198.51.200.100"),
                   forwarder->endpoint());

  const auto query =
      client_query("allow-query-none.extended-dns-errors.com");
  const auto result =
      network_->send(sim::NodeAddress::of("198.51.201.1"),
                     sim::NodeAddress::of("198.51.200.100"),
                     query.serialize());
  ASSERT_EQ(result.status, sim::SendStatus::Delivered);
  const auto response = dns::Message::parse(result.response);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().header.rcode, dns::RCode::SERVFAIL);
  std::vector<std::uint16_t> codes;
  for (const auto& e : edns::get_extended_errors(response.value()))
    codes.push_back(static_cast<std::uint16_t>(e.code));
  std::sort(codes.begin(), codes.end());
  EXPECT_EQ(codes, (std::vector<std::uint16_t>{9, 22, 23}));
}

TEST_F(ForwarderChain, ResolverEndpointRefusesWithoutRd) {
  auto query = dns::make_query(5, dns::Name::of("x.test"), dns::RRType::A,
                               /*recursion_desired=*/false);
  const auto result = network_->send(sim::NodeAddress::of("198.51.201.1"),
                                     sim::NodeAddress::of("198.51.200.53"),
                                     query.serialize());
  ASSERT_EQ(result.status, sim::SendStatus::Delivered);
  const auto response = dns::Message::parse(result.response);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().header.rcode, dns::RCode::REFUSED);
}

}  // namespace
