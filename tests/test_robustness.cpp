// Robustness property tests (deterministic fuzz-lite): the wire parser
// must never crash, loop, or over-read on mutated, truncated or random
// byte buffers — it either errors or yields a message that re-serializes.
// The same discipline is checked for the server endpoint (garbage in,
// silence or a well-formed response out) and the zone-file parser.
#include <gtest/gtest.h>

#include "crypto/rng.hpp"
#include "edns/ede.hpp"
#include "edns/edns.hpp"
#include "server/auth_server.hpp"
#include "testbed/testbed.hpp"
#include "zone/textio.hpp"

namespace {

using namespace ede;
using ede::crypto::Bytes;
using ede::crypto::Xoshiro256;

Bytes sample_wire() {
  dns::Message msg =
      dns::make_query(0xbeef, dns::Name::of("www.example.com"), dns::RRType::A);
  msg.header.qr = true;
  msg.answer.push_back({dns::Name::of("www.example.com"), dns::RRType::A,
                        dns::RRClass::IN, 300,
                        dns::ARdata{*dns::Ipv4Address::parse("192.0.2.1")}});
  msg.authority.push_back(
      {dns::Name::of("example.com"), dns::RRType::NS, dns::RRClass::IN, 300,
       dns::NsRdata{dns::Name::of("ns1.example.com")}});
  edns::Edns e;
  e.dnssec_ok = true;
  e.add({edns::EdeCode::StaleAnswer, "x"});
  edns::set_edns(msg, e);
  return msg.serialize();
}

TEST(Robustness, SingleByteMutationsNeverCrashTheParser) {
  const Bytes original = sample_wire();
  int reparsed = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (const std::uint8_t delta :
         {std::uint8_t{0x01}, std::uint8_t{0x80}, std::uint8_t{0xff}}) {
      Bytes mutated = original;
      mutated[i] ^= delta;
      const auto result = dns::Message::parse(mutated);
      if (result.ok()) {
        ++reparsed;
        // Anything that parses must re-serialize without throwing (the
        // extended-RCODE precondition is the one legal exception).
        try {
          (void)result.value().serialize();
        } catch (const std::logic_error&) {
        }
      }
    }
  }
  // Plenty of mutations are harmless (TTLs, addresses): the parser must
  // not be trivially rejecting everything either.
  EXPECT_GT(reparsed, 10);
}

TEST(Robustness, TruncationsNeverCrashTheParser) {
  const Bytes original = sample_wire();
  for (std::size_t len = 0; len < original.size(); ++len) {
    const Bytes prefix(original.begin(),
                       original.begin() + static_cast<std::ptrdiff_t>(len));
    // Every strict prefix must fail cleanly (the message has no trailing
    // slack), never crash.
    EXPECT_FALSE(dns::Message::parse(prefix).ok()) << "len " << len;
  }
}

TEST(Robustness, RandomBuffersNeverCrashTheParser) {
  Xoshiro256 rng(0xf522);
  for (int round = 0; round < 2000; ++round) {
    Bytes noise(rng.below(96));
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng());
    const auto result = dns::Message::parse(noise);
    if (result.ok()) {
      try {
        (void)result.value().serialize();
      } catch (const std::logic_error&) {
      }
    }
  }
  SUCCEED();
}

TEST(Robustness, CompressionBombIsRejectedQuickly) {
  // Header + a chain of self-referential-ish pointers.
  Bytes bomb = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0};
  // Question name: a pointer to itself (offset 12).
  bomb.push_back(0xc0);
  bomb.push_back(12);
  bomb.push_back(0);
  bomb.push_back(1);
  bomb.push_back(0);
  bomb.push_back(1);
  EXPECT_FALSE(dns::Message::parse(bomb).ok());
}

TEST(Robustness, ServerEndpointSurvivesGarbageQueries) {
  auto network = std::make_shared<sim::Network>(
      std::make_shared<sim::Clock>());
  testbed::Testbed testbed(network);
  const auto root = testbed.root_servers().front();
  const auto src = sim::NodeAddress::of("198.51.201.9");

  Xoshiro256 rng(99);
  int answered = 0;
  for (int round = 0; round < 500; ++round) {
    Bytes noise(rng.below(64) + 1);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng());
    const auto result = network->send(src, root, noise);
    if (result.status != sim::SendStatus::Delivered) continue;
    // Whatever came back must itself be a parseable DNS message.
    EXPECT_TRUE(dns::Message::parse(result.response).ok());
    ++answered;
  }
  // Most noise fails header parsing and is dropped; that is fine. The
  // check above matters for those that squeaked through.
  (void)answered;
}

TEST(Robustness, MutatedWireFromRealServersStillParsesOrFails) {
  // Take a genuine signed referral response and flip every byte once.
  auto network = std::make_shared<sim::Network>(
      std::make_shared<sim::Clock>());
  testbed::Testbed testbed(network);
  dns::Message query = dns::make_query(
      7, dns::Name::of("valid.extended-dns-errors.com"), dns::RRType::A);
  edns::Edns e;
  e.dnssec_ok = true;
  edns::set_edns(query, e);
  const auto result =
      network->send(sim::NodeAddress::of("198.51.201.9"),
                    testbed.root_servers().front(), query.serialize());
  ASSERT_EQ(result.status, sim::SendStatus::Delivered);
  const Bytes wire = result.response;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    Bytes mutated = wire;
    mutated[i] ^= 0x55;
    const auto parsed = dns::Message::parse(mutated);
    if (parsed.ok()) {
      try {
        (void)parsed.value().serialize();
      } catch (const std::logic_error&) {
      }
    }
  }
  SUCCEED();
}

TEST(Robustness, ZoneParserSurvivesMutatedZoneText) {
  auto network = std::make_shared<sim::Network>(
      std::make_shared<sim::Clock>());
  testbed::Testbed testbed(network);
  const auto zone = testbed.child_zone("valid");
  ASSERT_NE(zone, nullptr);
  std::string text = zone::to_zone_text(*zone);

  Xoshiro256 rng(7);
  for (int round = 0; round < 300; ++round) {
    std::string mutated = text;
    const std::size_t pos = rng.below(mutated.size());
    mutated[pos] = static_cast<char>(rng());
    // Must not crash; either parses or errors with a located message
    // (line number, or "end of file" for dangling constructs).
    const auto result = zone::parse_zone_text(mutated, {});
    if (!result.ok()) {
      const auto& message = result.error().message;
      EXPECT_TRUE(message.find("line") != std::string::npos ||
                  message.find("file") != std::string::npos)
          << message;
    }
  }
}

TEST(Robustness, ResolverSurvivesAMangledUpstream) {
  // An authority that returns random bytes: the resolver must treat it as
  // dead air and fail over cleanly.
  auto network = std::make_shared<sim::Network>(
      std::make_shared<sim::Clock>());
  testbed::Testbed testbed(network);

  auto rng = std::make_shared<Xoshiro256>(3);
  network->attach(sim::NodeAddress::of("93.184.218.1"),  // valid's server
                  [rng](crypto::BytesView,
                        const sim::PacketContext&) -> std::optional<Bytes> {
                    Bytes noise(24);
                    for (auto& b : noise)
                      b = static_cast<std::uint8_t>((*rng)());
                    return noise;
                  });

  auto resolver = testbed.make_resolver(resolver::profile_cloudflare());
  const auto outcome = resolver.resolve(
      dns::Name::of("valid.extended-dns-errors.com"), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::SERVFAIL);
  // Cloudflare-grade diagnosis still explains the outage.
  bool unreachable = false;
  for (const auto& error : outcome.errors)
    unreachable |= error.code == edns::EdeCode::NoReachableAuthority;
  EXPECT_TRUE(unreachable);
}

}  // namespace
