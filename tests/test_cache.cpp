// Resolver-cache unit tests: freshness, staleness windows, the SERVFAIL
// cache, eviction caps and statistics.
#include <gtest/gtest.h>

#include "resolver/cache.hpp"

namespace {

using namespace ede::resolver;
using ede::dns::Name;
using ede::dns::RRType;

PositiveEntry entry_for(const char* name, ede::sim::SimTime expires) {
  PositiveEntry entry;
  entry.rrset = ede::dns::RRset{
      Name::of(name), RRType::A, ede::dns::RRClass::IN, 300,
      {ede::dns::Rdata{
          ede::dns::ARdata{*ede::dns::Ipv4Address::parse("192.0.2.1")}}}};
  entry.security = ede::dnssec::Security::Secure;
  entry.expires = expires;
  return entry;
}

TEST(Cache, FreshPositiveHit) {
  Cache cache;
  cache.put_positive(entry_for("a.test", 1000));
  EXPECT_NE(cache.get_positive(Name::of("a.test"), RRType::A, 999), nullptr);
  EXPECT_NE(cache.get_positive(Name::of("a.test"), RRType::A, 1000), nullptr);
  EXPECT_EQ(cache.get_positive(Name::of("a.test"), RRType::A, 1001), nullptr);
}

TEST(Cache, LookupIsCaseInsensitive) {
  Cache cache;
  cache.put_positive(entry_for("A.Test", 1000));
  EXPECT_NE(cache.get_positive(Name::of("a.TEST"), RRType::A, 500), nullptr);
}

TEST(Cache, TypeIsPartOfTheKey) {
  Cache cache;
  cache.put_positive(entry_for("a.test", 1000));
  EXPECT_EQ(cache.get_positive(Name::of("a.test"), RRType::AAAA, 500),
            nullptr);
}

TEST(Cache, StaleLookupHonoursTheWindow) {
  Cache::Options options;
  options.stale_window = 100;
  Cache cache(options);
  cache.put_positive(entry_for("a.test", 1000));
  // Fresh entries are returned too.
  EXPECT_NE(cache.get_stale_positive(Name::of("a.test"), RRType::A, 900),
            nullptr);
  // Expired but within the window.
  EXPECT_NE(cache.get_stale_positive(Name::of("a.test"), RRType::A, 1050),
            nullptr);
  // Beyond the window.
  EXPECT_EQ(cache.get_stale_positive(Name::of("a.test"), RRType::A, 1101),
            nullptr);
}

TEST(Cache, NegativeEntries) {
  Cache cache;
  cache.put_negative(Name::of("n.test"), RRType::A, {true,
                     ede::dnssec::Security::Secure, 500});
  const auto* hit = cache.get_negative(Name::of("n.test"), RRType::A, 400);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->nxdomain);
  EXPECT_EQ(cache.get_negative(Name::of("n.test"), RRType::A, 501), nullptr);
  // Stale negative.
  EXPECT_NE(cache.get_stale_negative(Name::of("n.test"), RRType::A, 600),
            nullptr);
}

TEST(Cache, ServfailEntriesCarryFindings) {
  Cache cache;
  ServfailEntry entry;
  entry.findings.push_back({ede::dnssec::Stage::Transport,
                            ede::dnssec::Defect::ServerRefused, "x"});
  entry.expires = 100;
  cache.put_servfail(Name::of("s.test"), RRType::A, entry);
  const auto* hit = cache.get_servfail(Name::of("s.test"), RRType::A, 50);
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->findings.size(), 1u);
  EXPECT_EQ(hit->findings.front().defect,
            ede::dnssec::Defect::ServerRefused);
  EXPECT_EQ(cache.get_servfail(Name::of("s.test"), RRType::A, 101), nullptr);
}

TEST(Cache, DisabledCacheStoresNothing) {
  Cache::Options options;
  options.enabled = false;
  Cache cache(options);
  cache.put_positive(entry_for("a.test", 1000));
  EXPECT_EQ(cache.get_positive(Name::of("a.test"), RRType::A, 10), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Cache, EvictionCapBoundsMemory) {
  Cache::Options options;
  options.max_entries = 10;
  Cache cache(options);
  for (int i = 0; i < 25; ++i) {
    cache.put_positive(
        entry_for(("d" + std::to_string(i) + ".test").c_str(), 1000));
  }
  EXPECT_LE(cache.size(), options.max_entries);
}

TEST(Cache, InsertAtCapacityNeverWipesTheMap) {
  // Regression: the old eviction called .clear() on the whole map at the
  // cap, nuking every live entry. An insert at capacity must keep all but
  // (at most) a small oldest-expiring batch.
  Cache::Options options;
  options.max_entries = 64;
  Cache cache(options);
  for (int i = 0; i < 64; ++i) {
    cache.put_positive(entry_for(("d" + std::to_string(i) + ".test").c_str(),
                                 static_cast<ede::sim::SimTime>(1000 + i)),
                       /*now=*/500);
  }
  cache.put_positive(entry_for("straw.test", 2000), /*now=*/500);

  EXPECT_LE(cache.size(), options.max_entries);
  // At least 15/16 of the live entries survive the capacity eviction.
  EXPECT_GE(cache.size(), options.max_entries - options.max_entries / 16);
  EXPECT_NE(cache.get_positive(Name::of("straw.test"), RRType::A, 600),
            nullptr);
  // The survivors are the *youngest*-expiring; the very last entry
  // inserted before the straw expires latest of the original 64.
  EXPECT_NE(cache.get_positive(Name::of("d63.test"), RRType::A, 600),
            nullptr);
}

TEST(Cache, CapacityEvictionTakesTheOldestExpiringFirst) {
  Cache::Options options;
  options.max_entries = 4;
  options.stale_window = 0;
  Cache cache(options);
  cache.put_positive(entry_for("a.test", 100), 50);
  cache.put_positive(entry_for("b.test", 200), 50);
  cache.put_positive(entry_for("c.test", 300), 50);
  cache.put_positive(entry_for("d.test", 400), 50);
  cache.put_positive(entry_for("e.test", 500), 50);  // at cap: evicts a.test

  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.get_positive(Name::of("a.test"), RRType::A, 60), nullptr);
  for (const char* name : {"b.test", "c.test", "d.test", "e.test"}) {
    EXPECT_NE(cache.get_positive(Name::of(name), RRType::A, 60), nullptr)
        << name;
  }
  EXPECT_EQ(cache.stats().evicted_capacity, 1u);
  EXPECT_EQ(cache.stats().evicted_expired, 0u);
}

TEST(Cache, InsertAtCapacitySweepsEntriesPastTheStaleHorizon) {
  Cache::Options options;
  options.max_entries = 4;
  options.stale_window = 10;
  Cache cache(options);
  // Three entries expired beyond expiry+stale_window, one still stale-
  // servable, then an insert at the cap with the clock at 200.
  cache.put_positive(entry_for("dead1.test", 100), 100);
  cache.put_positive(entry_for("dead2.test", 120), 120);
  cache.put_positive(entry_for("dead3.test", 140), 140);
  cache.put_positive(entry_for("stale.test", 195), 150);
  cache.put_positive(entry_for("fresh.test", 900), 200);

  // The dead entries were swept; the stale-window entry survived.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evicted_expired, 3u);
  EXPECT_EQ(cache.stats().evicted_capacity, 0u);
  EXPECT_NE(cache.get_stale_positive(Name::of("stale.test"), RRType::A, 200),
            nullptr);
  EXPECT_NE(cache.get_positive(Name::of("fresh.test"), RRType::A, 200),
            nullptr);
}

TEST(Cache, NegativeAndServfailMapsEvictWithoutWiping) {
  Cache::Options options;
  options.max_entries = 3;
  options.stale_window = 0;
  Cache cache(options);
  for (int i = 0; i < 6; ++i) {
    const auto name = Name::of(("n" + std::to_string(i) + ".test").c_str());
    cache.put_negative(name, RRType::A,
                       {true, ede::dnssec::Security::Insecure,
                        static_cast<ede::sim::SimTime>(100 + i)},
                       50);
    cache.put_servfail(name, RRType::A,
                       {{}, static_cast<ede::sim::SimTime>(100 + i)}, 50);
  }
  // Each map holds its newest-expiring entries, never zero.
  EXPECT_NE(cache.get_negative(Name::of("n5.test"), RRType::A, 60), nullptr);
  EXPECT_NE(cache.get_servfail(Name::of("n5.test"), RRType::A, 60), nullptr);
  EXPECT_EQ(cache.get_negative(Name::of("n0.test"), RRType::A, 60), nullptr);
  EXPECT_EQ(cache.get_servfail(Name::of("n0.test"), RRType::A, 60), nullptr);
  EXPECT_LE(cache.size(), 2 * options.max_entries);
  EXPECT_GE(cache.size(), 4u);
}

TEST(Cache, ClearEmptiesEverything) {
  Cache cache;
  cache.put_positive(entry_for("a.test", 1000));
  cache.put_negative(Name::of("b.test"), RRType::A, {});
  cache.put_servfail(Name::of("c.test"), RRType::A, {});
  EXPECT_EQ(cache.size(), 3u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Cache, StatsTrackHitsAndMisses) {
  Cache cache;
  cache.put_positive(entry_for("a.test", 1000));
  (void)cache.get_positive(Name::of("a.test"), RRType::A, 10);
  (void)cache.get_positive(Name::of("b.test"), RRType::A, 10);
  (void)cache.get_stale_positive(Name::of("a.test"), RRType::A, 1500);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().stale_hits, 1u);
  EXPECT_EQ(cache.stats().lookups, 3u);
}

// The counting contract: every answered or missed lookup is counted
// exactly once, so the outcome counters always partition the lookups.
// (The serve-stale path used to double-count: the fresh miss was booked,
// then the stale fallback re-booked the same client question.)
TEST(Cache, StatsPartitionLookupsExactly) {
  Cache::Options options;
  options.stale_window = 100;
  Cache cache(options);
  cache.put_positive(entry_for("a.test", 1000));
  NegativeEntry negative;
  negative.nxdomain = true;
  negative.expires = 1000;
  cache.put_negative(Name::of("n.test"), RRType::A, negative);
  ServfailEntry servfail;
  servfail.expires = 100;
  cache.put_servfail(Name::of("s.test"), RRType::A, servfail);

  (void)cache.get_positive(Name::of("a.test"), RRType::A, 10);      // hit
  (void)cache.get_positive(Name::of("a.test"), RRType::A, 1500);    // miss
  (void)cache.get_stale_positive(Name::of("a.test"), RRType::A, 500);   // hit
  (void)cache.get_stale_positive(Name::of("a.test"), RRType::A, 1050);  // stale
  (void)cache.get_stale_positive(Name::of("a.test"), RRType::A, 1200);  // gone
  (void)cache.get_stale_positive(Name::of("x.test"), RRType::A, 10);    // gone
  (void)cache.get_negative(Name::of("n.test"), RRType::A, 10);      // hit
  (void)cache.get_negative(Name::of("x.test"), RRType::A, 10);      // miss
  (void)cache.get_stale_negative(Name::of("n.test"), RRType::A, 10);    // hit
  (void)cache.get_servfail(Name::of("s.test"), RRType::A, 10);      // hit
  (void)cache.get_servfail(Name::of("s.test"), RRType::A, 500);     // miss

  const auto& stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.stale_hits, stats.lookups);
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.stale_hits, 1u);
  EXPECT_EQ(stats.lookups, 9u);
}

// --- expiry introspection (the prefetcher's view) ------------------------

TEST(Cache, TtlRemainingSeesOnlyFreshEntries) {
  Cache cache;
  cache.put_positive(entry_for("a.test", 1000));
  NegativeEntry negative;
  negative.nxdomain = true;
  negative.expires = 500;
  cache.put_negative(Name::of("n.test"), RRType::A, negative);

  EXPECT_EQ(cache.ttl_remaining(Name::of("a.test"), RRType::A, 400),
            std::optional<ede::sim::SimTime>{600});
  // The boundary second still counts as fresh, mirroring get_positive.
  EXPECT_EQ(cache.ttl_remaining(Name::of("a.test"), RRType::A, 1000),
            std::optional<ede::sim::SimTime>{0});
  // Expired entries have no remaining TTL, even inside the stale window.
  EXPECT_EQ(cache.ttl_remaining(Name::of("a.test"), RRType::A, 1001),
            std::nullopt);
  // Negative entries are consulted too (lookup order: positive first).
  EXPECT_EQ(cache.ttl_remaining(Name::of("n.test"), RRType::A, 400),
            std::optional<ede::sim::SimTime>{100});
  EXPECT_EQ(cache.ttl_remaining(Name::of("absent.test"), RRType::A, 400),
            std::nullopt);
  // The key is (name, type), exactly like a serving lookup.
  EXPECT_EQ(cache.ttl_remaining(Name::of("a.test"), RRType::AAAA, 400),
            std::nullopt);
}

TEST(Cache, ExpiringWithinListsTheHorizonInCanonicalOrder) {
  Cache cache;
  cache.put_positive(entry_for("soon.test", 1010));
  cache.put_positive(entry_for("later.test", 1200));
  cache.put_positive(entry_for("aaa-soon.test", 1005));
  cache.put_positive(entry_for("gone.test", 900));  // already expired

  const auto keys = cache.expiring_within(30'000, /*now=*/1000);
  ASSERT_EQ(keys.size(), 2u);
  // Canonical key order (deterministic for the prefetch scheduler).
  EXPECT_EQ(keys[0].name, Name::of("aaa-soon.test"));
  EXPECT_EQ(keys[1].name, Name::of("soon.test"));

  // The millisecond horizon rounds up to the next whole second.
  const auto tight = cache.expiring_within(4'500, /*now=*/1000);
  ASSERT_EQ(tight.size(), 1u);
  EXPECT_EQ(tight[0].name, Name::of("aaa-soon.test"));

  // A wide-open horizon lists every fresh entry, never the expired one.
  EXPECT_EQ(cache.expiring_within(1'000'000, /*now=*/1000).size(), 3u);
}

TEST(Cache, IntrospectionNeverTouchesTheStats) {
  Cache cache;
  cache.put_positive(entry_for("a.test", 1000));
  (void)cache.get_positive(Name::of("a.test"), RRType::A, 10);    // hit
  (void)cache.get_positive(Name::of("miss.test"), RRType::A, 10); // miss
  const auto before = cache.stats();

  (void)cache.ttl_remaining(Name::of("a.test"), RRType::A, 10);
  (void)cache.ttl_remaining(Name::of("miss.test"), RRType::A, 10);
  (void)cache.expiring_within(60'000, 10);

  const auto& after = cache.stats();
  EXPECT_EQ(after.lookups, before.lookups);
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.stale_hits, before.stale_hits);
  // The partition invariant keeps holding around introspection reads.
  EXPECT_EQ(after.hits + after.misses + after.stale_hits, after.lookups);
}

}  // namespace
