// The EDNS-compliance zoo family (RFC 6891, DESIGN.md §5i) end to end:
// every case resolved twice through all seven vendor profiles must match
// the calibrated expected_edns() table — the first contact shows the
// probe-and-fallback dance, the second (flipped qtype, so the answer and
// SERVFAIL caches miss) shows what the InfraCache capability memory made
// of the verdict — and the hardening counters must tell the same story.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "resolver/resolver.hpp"
#include "testbed/expected.hpp"
#include "testbed/testbed.hpp"

namespace {

using ede::resolver::HardeningStats;
using ede::testbed::EdnsCaseSpec;
using ede::testbed::Testbed;

struct EdnsWorld {
  EdnsWorld()
      : clock(std::make_shared<ede::sim::Clock>()),
        network(std::make_shared<ede::sim::Network>(clock)),
        testbed(network, {.edns_family = true}) {}

  std::shared_ptr<ede::sim::Clock> clock;
  std::shared_ptr<ede::sim::Network> network;
  Testbed testbed;
};

EdnsWorld& world() {
  static EdnsWorld instance;
  return instance;
}

std::vector<std::uint16_t> sorted_codes(const ede::resolver::Outcome& o) {
  std::vector<std::uint16_t> codes;
  for (const auto& error : o.errors)
    codes.push_back(static_cast<std::uint16_t>(error.code));
  std::sort(codes.begin(), codes.end());
  codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
  return codes;
}

ede::dns::RCode rcode_of(const std::string& name) {
  return name == "NOERROR" ? ede::dns::RCode::NOERROR
                           : ede::dns::RCode::SERVFAIL;
}

const EdnsCaseSpec& spec_of(const EdnsWorld& w, std::string_view label) {
  const auto& specs = w.testbed.edns_case_specs();
  const auto it =
      std::find_if(specs.begin(), specs.end(),
                   [&](const EdnsCaseSpec& s) { return s.label == label; });
  EXPECT_NE(it, specs.end()) << label;
  return *it;
}

class EdnsRow : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EdnsRow, MatchesTheCalibratedTable) {
  auto& w = world();
  const auto& spec = w.testbed.edns_case_specs()[GetParam()];
  const auto& expected = ede::testbed::expected_edns()[GetParam()];
  ASSERT_EQ(expected.label, spec.label) << "row tables out of sync";

  const auto qname = w.testbed.edns_query_name(spec);
  const auto profiles = ede::resolver::all_profiles();
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    // One resolver per (case, vendor): both contacts share its caches,
    // exactly what the capability memory needs to be observable.
    auto resolver = w.testbed.make_resolver(profiles[p]);
    const auto first =
        resolver.resolve(qname, Testbed::edns_qtype(spec, false));
    EXPECT_EQ(first.rcode, rcode_of(expected.first[p].rcode))
        << spec.label << " first contact via " << profiles[p].name;
    EXPECT_EQ(sorted_codes(first), expected.first[p].codes)
        << spec.label << " first contact via " << profiles[p].name;

    const auto second =
        resolver.resolve(qname, Testbed::edns_qtype(spec, true));
    EXPECT_EQ(second.rcode, rcode_of(expected.second[p].rcode))
        << spec.label << " second contact via " << profiles[p].name;
    EXPECT_EQ(sorted_codes(second), expected.second[p].codes)
        << spec.label << " second contact via " << profiles[p].name;

    // A plain-DNS rescue can never masquerade as validated data.
    if (second.rcode == ede::dns::RCode::NOERROR &&
        resolver.hardening_stats().edns_degraded_success > 0) {
      EXPECT_NE(second.security, ede::dnssec::Security::Secure)
          << spec.label << " via " << profiles[p].name;
    }
  }
}

std::string row_name(const ::testing::TestParamInfo<std::size_t>& info) {
  std::string label = ede::testbed::expected_edns()[info.param].label;
  for (char& c : label) {
    if (c == '-') c = '_';
  }
  return std::to_string(info.param + 1) + "_" + label;
}

INSTANTIATE_TEST_SUITE_P(AllCases, EdnsRow,
                         ::testing::Range<std::size_t>(0, 12), row_name);

TEST(EdnsZoo, TablesAreInSync) {
  auto& w = world();
  ASSERT_EQ(w.testbed.edns_case_specs().size(), 12u);
  ASSERT_EQ(ede::testbed::expected_edns().size(), 12u);
  // The classic worlds must not grow EDNS cases implicitly.
  Testbed plain(std::make_shared<ede::sim::Network>(
      std::make_shared<ede::sim::Clock>()));
  EXPECT_TRUE(plain.edns_case_specs().empty());
  EXPECT_EQ(plain.cases().size(), 63u);
}

// The capability memory, observed through the hardening counters: a
// timeout-downgrading vendor learns plain-DNS-only at abandonment and
// skips the dance on the next contact; a post-flag-day vendor never does.
TEST(EdnsZoo, CapabilityMemorySplitsTheVendors) {
  auto& w = world();
  const auto& spec = spec_of(w, "edns-drop");
  const auto qname = w.testbed.edns_query_name(spec);

  // Unbound-style: downgrade after the timeout quota, remember, skip.
  auto unbound = w.testbed.make_resolver(ede::resolver::profile_unbound());
  const auto first = unbound.resolve(qname, Testbed::edns_qtype(spec, false));
  EXPECT_EQ(first.rcode, ede::dns::RCode::SERVFAIL);
  const HardeningStats mid = unbound.hardening_stats();
  EXPECT_EQ(mid.edns_capability_skips, 0u);
  EXPECT_EQ(mid.edns_degraded_success, 0u);
  EXPECT_GE(unbound.infra().stats().edns_broken_learned, 1u);

  const auto second = unbound.resolve(qname, Testbed::edns_qtype(spec, true));
  EXPECT_EQ(second.rcode, ede::dns::RCode::NOERROR);
  const HardeningStats after = unbound.hardening_stats();
  EXPECT_GE(after.edns_capability_skips, 1u);
  EXPECT_GE(after.edns_degraded_success, 1u);

  // BIND-style (post flag day): timeouts never teach it anything.
  auto bind = w.testbed.make_resolver(ede::resolver::profile_bind());
  (void)bind.resolve(qname, Testbed::edns_qtype(spec, false));
  const auto bind_second =
      bind.resolve(qname, Testbed::edns_qtype(spec, true));
  EXPECT_EQ(bind_second.rcode, ede::dns::RCode::SERVFAIL);
  EXPECT_EQ(bind.hardening_stats().edns_capability_skips, 0u);
  EXPECT_EQ(bind.infra().stats().edns_broken_learned, 0u);
}

// Signal-driven fallback (FORMERR) is a free in-resolution retry: the
// plain probe is counted, the rejection is counted, and the verdict is
// remembered even by the post-flag-day vendors (the flag day removed only
// the timeout-driven downgrade).
TEST(EdnsZoo, FormerrDanceIsCountedAndRemembered) {
  auto& w = world();
  const auto& spec = spec_of(w, "edns-formerr");
  const auto qname = w.testbed.edns_query_name(spec);

  auto resolver = w.testbed.make_resolver(ede::resolver::profile_bind());
  const auto first =
      resolver.resolve(qname, Testbed::edns_qtype(spec, false));
  EXPECT_EQ(first.rcode, ede::dns::RCode::NOERROR);
  const HardeningStats mid = resolver.hardening_stats();
  EXPECT_GE(mid.edns_formerr_seen, 1u);
  EXPECT_GE(mid.edns_fallback_probes, 1u);
  EXPECT_GE(mid.edns_degraded_success, 1u);
  EXPECT_EQ(mid.edns_capability_skips, 0u);

  const auto second =
      resolver.resolve(qname, Testbed::edns_qtype(spec, true));
  EXPECT_EQ(second.rcode, ede::dns::RCode::NOERROR);
  const HardeningStats after = resolver.hardening_stats();
  EXPECT_GE(after.edns_capability_skips, 1u);
  // No new rejection: the second contact never wasted an OPT.
  EXPECT_EQ(after.edns_formerr_seen, mid.edns_formerr_seen);
}

// A PlainOnly verdict expires after the vendor's re-probe TTL: the next
// contact pays for a fresh EDNS probe instead of skipping the dance.
TEST(EdnsZoo, CapabilityExpiryTriggersReprobe) {
  // A private world: this test moves the clock.
  EdnsWorld w;
  const auto& spec = spec_of(w, "edns-drop");
  const auto qname = w.testbed.edns_query_name(spec);

  auto resolver = w.testbed.make_resolver(ede::resolver::profile_unbound());
  (void)resolver.resolve(qname, Testbed::edns_qtype(spec, false));
  const auto learned = resolver.infra().stats().edns_broken_learned;
  EXPECT_GE(learned, 1u);

  // Within the TTL a third qtype still skips the dance (NODATA, but the
  // server answered plain).
  (void)resolver.resolve(qname, ede::dns::RRType::MX);
  EXPECT_GE(resolver.hardening_stats().edns_capability_skips, 1u);
  const auto skips = resolver.hardening_stats().edns_capability_skips;

  // Past the TTL the verdict reads Unknown again: the resolver re-probes
  // with EDNS, the OPT-eating server goes silent, and the failure is
  // learned afresh.
  w.clock->advance(
      ede::resolver::profile_unbound().edns_dance.capability_ttl_ms / 1000 +
      1);
  const auto reprobe = resolver.resolve(qname, ede::dns::RRType::AAAA);
  EXPECT_EQ(reprobe.rcode, ede::dns::RCode::SERVFAIL);
  EXPECT_EQ(resolver.hardening_stats().edns_capability_skips, skips);
  EXPECT_GT(resolver.infra().stats().edns_broken_learned, learned);
}

}  // namespace
