// Wire reader/writer tests: bounds checking, name compression (both
// directions), and the malformed-pointer defences.
#include <gtest/gtest.h>

#include "dnscore/wire.hpp"

namespace {

using namespace ede::dns;
using ede::crypto::Bytes;

TEST(WireReader, ScalarsBigEndian) {
  const Bytes data = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07};
  WireReader r(data);
  EXPECT_EQ(r.read_u8().value(), 0x01);
  EXPECT_EQ(r.read_u16().value(), 0x0203);
  EXPECT_EQ(r.read_u32().value(), 0x04050607u);
  EXPECT_TRUE(r.at_end());
}

TEST(WireReader, TruncationIsAnErrorNotACrash) {
  const Bytes data = {0x01};
  WireReader r(data);
  EXPECT_FALSE(r.read_u32().ok());
  EXPECT_FALSE(r.read_u16().ok());
  EXPECT_TRUE(r.read_u8().ok());
  EXPECT_FALSE(r.read_u8().ok());
}

TEST(WireReader, ReadBytesBounds) {
  const Bytes data = {1, 2, 3};
  WireReader r(data);
  EXPECT_FALSE(r.read_bytes(4).ok());
  EXPECT_EQ(r.read_bytes(3).value(), (Bytes{1, 2, 3}));
}

TEST(WireName, UncompressedRoundTrip) {
  WireWriter w;
  w.write_name(Name::of("www.example.com"));
  WireReader r(w.data());
  EXPECT_EQ(r.read_name().value(), Name::of("www.example.com"));
  EXPECT_TRUE(r.at_end());
}

TEST(WireName, CompressionReusesSuffixes) {
  WireWriter w;
  w.write_name(Name::of("www.example.com"));
  const std::size_t first = w.size();
  w.write_name(Name::of("mail.example.com"));
  const std::size_t second = w.size() - first;
  // "mail" label (5 bytes) + 2-byte pointer.
  EXPECT_EQ(second, 7u);

  WireReader r(w.data());
  EXPECT_EQ(r.read_name().value(), Name::of("www.example.com"));
  EXPECT_EQ(r.read_name().value(), Name::of("mail.example.com"));
}

TEST(WireName, FullNameCompressesToOnePointer) {
  WireWriter w;
  w.write_name(Name::of("example.com"));
  const std::size_t first = w.size();
  w.write_name(Name::of("example.com"));
  EXPECT_EQ(w.size() - first, 2u);
}

TEST(WireName, CompressionIsCaseInsensitive) {
  WireWriter w;
  w.write_name(Name::of("EXAMPLE.com"));
  const std::size_t first = w.size();
  w.write_name(Name::of("example.COM"));
  EXPECT_EQ(w.size() - first, 2u);
  WireReader r(w.data());
  (void)r.read_name();
  EXPECT_EQ(r.read_name().value(), Name::of("example.com"));
}

TEST(WireName, RootEncodesAsSingleZero) {
  WireWriter w;
  w.write_name(Name{});
  EXPECT_EQ(w.data(), Bytes{0});
}

TEST(WireName, RejectsForwardPointer) {
  // A pointer that points at or after itself must be rejected.
  const Bytes data = {0xc0, 0x00};
  WireReader r(data);
  EXPECT_FALSE(r.read_name().ok());
}

TEST(WireName, RejectsPointerLoop) {
  // Two pointers pointing at each other.
  const Bytes data = {0xc0, 0x02, 0xc0, 0x00};
  WireReader r(data);
  ASSERT_TRUE(r.seek(2).ok());
  EXPECT_FALSE(r.read_name().ok());
}

TEST(WireName, RejectsTruncatedLabel) {
  const Bytes data = {5, 'a', 'b'};
  WireReader r(data);
  EXPECT_FALSE(r.read_name().ok());
}

TEST(WireName, RejectsReservedLabelType) {
  const Bytes data = {0x80, 'a'};
  WireReader r(data);
  EXPECT_FALSE(r.read_name().ok());
}

TEST(WireName, PointerTargetParsesAsSuffix) {
  // Manually construct: "foo" + pointer to "example.com" at offset 0.
  WireWriter w;
  w.write_name(Name::of("example.com"));
  const std::size_t name_at = w.size();
  w.write_u8(3);
  w.write_bytes(ede::crypto::as_bytes("foo"));
  w.write_u16(0xc000);  // pointer to offset 0

  WireReader r(w.data());
  ASSERT_TRUE(r.seek(name_at).ok());
  EXPECT_EQ(r.read_name().value(), Name::of("foo.example.com"));
  EXPECT_TRUE(r.at_end());  // cursor lands after the pointer
}

TEST(WireWriter, PatchU16) {
  WireWriter w;
  w.write_u16(0);
  w.write_u32(0xdeadbeef);
  w.patch_u16(0, 0x1234);
  WireReader r(w.data());
  EXPECT_EQ(r.read_u16().value(), 0x1234);
  EXPECT_EQ(r.read_u32().value(), 0xdeadbeefu);
}

TEST(WireName, RejectsTruncatedPointer) {
  // A lone 0xc0 with no low byte.
  const Bytes data = {3, 'f', 'o', 'o', 0xc0};
  WireReader r(data);
  EXPECT_FALSE(r.read_name().ok());
}

TEST(WireName, RejectsSelfPointer) {
  const Bytes data = {0, 0xc0, 0x01};
  WireReader r(data);
  ASSERT_TRUE(r.seek(1).ok());
  EXPECT_FALSE(r.read_name().ok());
}

TEST(WireName, RejectsNameOver255OctetsAssembledFromLabels) {
  // Four 63-octet labels are valid individually but assemble to a name
  // over the RFC 1035 255-octet ceiling; the reader must reject it.
  Bytes data;
  for (int i = 0; i < 4; ++i) {
    data.push_back(63);
    data.insert(data.end(), 63, static_cast<std::uint8_t>('a'));
  }
  data.push_back(0);
  WireReader r(data);
  EXPECT_FALSE(r.read_name().ok());
}

TEST(WireName, RejectsPointerIntoLabelInterior) {
  // "example.com" starts at 0; a pointer into the middle of the first
  // label reinterprets 'x' (0x78) as a length octet and runs off the end.
  WireWriter w;
  w.write_name(Name::of("example.com"));
  const std::size_t at = w.size();
  w.write_u16(0xc000 | 2);  // into "example"
  WireReader r(w.data());
  ASSERT_TRUE(r.seek(at).ok());
  EXPECT_FALSE(r.read_name().ok());
}

TEST(WireName, CompressionTableGrowthKeepsPointersExact) {
  // Enough distinct names to force the writer's open-addressing table
  // through several growth cycles; every repeated name must still
  // compress to a single pointer at its original offset.
  WireWriter w;
  std::vector<Name> names;
  std::vector<std::size_t> offsets;
  for (int i = 0; i < 150; ++i) {
    names.push_back(
        Name::of("host" + std::to_string(i) + ".pool.example.com"));
    offsets.push_back(w.size());
    w.write_name(names.back());
  }
  const std::size_t second_block = w.size();
  for (int i = 0; i < 150; ++i) {
    const std::size_t before = w.size();
    w.write_name(names[static_cast<std::size_t>(i)]);
    ASSERT_EQ(w.size() - before, 2u) << "name " << i << " not a pointer";
  }
  // Decode the second block: every pointer must resolve to its name.
  WireReader r(w.data());
  ASSERT_TRUE(r.seek(second_block).ok());
  for (int i = 0; i < 150; ++i) {
    const auto back = r.read_name();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), names[static_cast<std::size_t>(i)]);
  }
}

TEST(WireName, NoCompressionPointerBeyond14Bits) {
  // Fill the buffer past 0x3fff, then write the same name twice: the
  // second copy must not be compressed against an unreachable offset.
  WireWriter w;
  const Bytes filler(0x4000, 0xaa);
  w.write_bytes(filler);
  w.write_name(Name::of("big.example"));
  const std::size_t first = w.size();
  w.write_name(Name::of("big.example"));
  EXPECT_EQ(w.size() - first, Name::of("big.example").wire_length());
}

}  // namespace
