// Wildcard tests: RFC 1034 §4.3.3 synthesis by the server and RFC 4035
// §5.3.4 wildcard-expansion validation (the RRSIG labels-field mechanics),
// end to end through a signed hierarchy.
#include <gtest/gtest.h>

#include "edns/edns.hpp"
#include "resolver/resolver.hpp"
#include "server/auth_server.hpp"
#include "zone/signer.hpp"

namespace {

using namespace ede;
using dns::Name;
using dns::RRType;

class WildcardZone : public ::testing::Test {
 protected:
  void SetUp() override {
    zone_ = std::make_shared<zone::Zone>(Name::of("wild.test"));
    dns::SoaRdata soa;
    soa.mname = Name::of("ns1.wild.test");
    soa.rname = Name::of("hostmaster.wild.test");
    soa.minimum = 300;
    zone_->add(zone_->origin(), RRType::SOA, soa);
    zone_->add(zone_->origin(), RRType::NS,
               dns::NsRdata{Name::of("ns1.wild.test")});
    zone_->add(Name::of("ns1.wild.test"), RRType::A,
               dns::ARdata{*dns::Ipv4Address::parse("93.184.224.1")});
    zone_->add(Name::of("*.wild.test"), RRType::A,
               dns::ARdata{*dns::Ipv4Address::parse("93.184.224.100")});
    zone_->add(Name::of("concrete.wild.test"), RRType::A,
               dns::ARdata{*dns::Ipv4Address::parse("93.184.224.2")});
    keys_ = zone::make_zone_keys(zone_->origin());
    zone::sign_zone(*zone_, keys_, {});
    server_.add_zone(zone_);
  }

  dns::Message ask(std::string_view qname, RRType qtype = RRType::A) {
    dns::Message query = dns::make_query(1, Name::of(qname), qtype);
    edns::Edns e;
    e.dnssec_ok = true;
    e.udp_payload_size = 0xffff;
    edns::set_edns(query, e);
    return server_.handle(
        query, sim::PacketContext{sim::NodeAddress::of("192.0.2.9")});
  }

  std::shared_ptr<zone::Zone> zone_;
  zone::ZoneKeys keys_;
  server::AuthServer server_;
};

TEST_F(WildcardZone, SignerExcludesTheStarFromTheLabelsField) {
  const auto sigs = zone_->signatures(Name::of("*.wild.test"), RRType::A);
  ASSERT_EQ(sigs.size(), 1u);
  EXPECT_EQ(sigs.front().labels, 2);  // "wild" + "test", not the "*"
  // A concrete name keeps the full count.
  const auto concrete =
      zone_->signatures(Name::of("concrete.wild.test"), RRType::A);
  ASSERT_EQ(concrete.size(), 1u);
  EXPECT_EQ(concrete.front().labels, 3);
}

TEST_F(WildcardZone, ServerSynthesizesWildcardAnswers) {
  const auto response = ask("anything.wild.test");
  EXPECT_EQ(response.header.rcode, dns::RCode::NOERROR);
  ASSERT_FALSE(response.answer.empty());
  EXPECT_EQ(response.answer.front().name, Name::of("anything.wild.test"));
  const auto& a = std::get<dns::ARdata>(response.answer.front().rdata);
  EXPECT_EQ(a.address.to_string(), "93.184.224.100");
}

TEST_F(WildcardZone, ConcreteNamesBeatTheWildcard) {
  const auto response = ask("concrete.wild.test");
  const auto& a = std::get<dns::ARdata>(response.answer.front().rdata);
  EXPECT_EQ(a.address.to_string(), "93.184.224.2");
}

TEST_F(WildcardZone, WildcardDoesNotAnswerOtherTypes) {
  const auto response = ask("anything.wild.test", RRType::TXT);
  EXPECT_TRUE(response.answer.empty());  // NODATA, no TXT at the wildcard
}

TEST_F(WildcardZone, ExpandedAnswerValidates) {
  const auto response = ask("deep.label.wild.test");
  ASSERT_FALSE(response.answer.empty());
  const auto rrsets = dns::group_rrsets(response.answer);
  const dns::RRset* answer = nullptr;
  std::vector<dns::RrsigRdata> sigs;
  for (const auto& set : rrsets) {
    if (set.type == RRType::A) answer = &set;
    if (set.type == RRType::RRSIG) {
      for (const auto& rd : set.rdatas)
        sigs.push_back(std::get<dns::RrsigRdata>(rd));
    }
  }
  ASSERT_NE(answer, nullptr);
  const auto result = dnssec::validate_answer_rrset(
      *answer, sigs, zone_->origin(), {keys_.ksk.dnskey, keys_.zsk.dnskey},
      sim::kDefaultNow, {});
  EXPECT_EQ(result.security, dnssec::Security::Secure);
}

TEST_F(WildcardZone, TamperedExpansionFailsValidation) {
  const auto response = ask("victim.wild.test");
  auto rrsets = dns::group_rrsets(response.answer);
  dns::RRset* answer = nullptr;
  std::vector<dns::RrsigRdata> sigs;
  for (auto& set : rrsets) {
    if (set.type == RRType::A) answer = &set;
    if (set.type == RRType::RRSIG) {
      for (const auto& rd : set.rdatas)
        sigs.push_back(std::get<dns::RrsigRdata>(rd));
    }
  }
  ASSERT_NE(answer, nullptr);
  // An attacker swaps the synthesized address.
  answer->rdatas.front() = dns::ARdata{*dns::Ipv4Address::parse("6.6.6.6")};
  const auto result = dnssec::validate_answer_rrset(
      *answer, sigs, zone_->origin(), {keys_.ksk.dnskey, keys_.zsk.dnskey},
      sim::kDefaultNow, {});
  EXPECT_EQ(result.security, dnssec::Security::Bogus);
}

TEST(WildcardEndToEnd, ResolvesSecurelyThroughTheHierarchy) {
  auto clock = std::make_shared<sim::Clock>();
  auto network = std::make_shared<sim::Network>(clock);

  auto child = std::make_shared<zone::Zone>(Name::of("wild.test"));
  dns::SoaRdata soa;
  soa.mname = Name::of("ns1.wild.test");
  soa.rname = Name::of("hostmaster.wild.test");
  soa.minimum = 300;
  child->add(child->origin(), RRType::SOA, soa);
  child->add(child->origin(), RRType::NS,
             dns::NsRdata{Name::of("ns1.wild.test")});
  child->add(Name::of("ns1.wild.test"), RRType::A,
             dns::ARdata{*dns::Ipv4Address::parse("93.184.224.1")});
  child->add(Name::of("*.wild.test"), RRType::A,
             dns::ARdata{*dns::Ipv4Address::parse("93.184.224.100")});
  const auto child_keys = zone::make_zone_keys(child->origin());
  zone::sign_zone(*child, child_keys, {});
  auto child_server = std::make_shared<server::AuthServer>();
  child_server->add_zone(child);
  network->attach(sim::NodeAddress::of("93.184.224.1"),
                  child_server->endpoint());

  auto root = std::make_shared<zone::Zone>(Name{});
  dns::SoaRdata root_soa;
  root_soa.mname = Name::of("a.root-servers.net");
  root_soa.rname = Name{};
  root->add(Name{}, RRType::SOA, root_soa);
  root->add(Name{}, RRType::NS, dns::NsRdata{Name::of("a.root-servers.net")});
  root->add(Name::of("a.root-servers.net"), RRType::A,
            dns::ARdata{*dns::Ipv4Address::parse("198.41.0.4")});
  root->add(Name::of("wild.test"), RRType::NS,
            dns::NsRdata{Name::of("ns1.wild.test")});
  root->add(Name::of("ns1.wild.test"), RRType::A,
            dns::ARdata{*dns::Ipv4Address::parse("93.184.224.1")});
  for (const auto& ds : zone::ds_records(Name::of("wild.test"), child_keys)) {
    root->add(Name::of("wild.test"), RRType::DS, ds);
  }
  const auto root_keys = zone::make_zone_keys(Name{});
  zone::sign_zone(*root, root_keys, {});
  auto root_server = std::make_shared<server::AuthServer>();
  root_server->add_zone(root);
  network->attach(sim::NodeAddress::of("198.41.0.4"),
                  root_server->endpoint());

  resolver::RecursiveResolver resolver(
      network, resolver::profile_cloudflare(),
      {sim::NodeAddress::of("198.41.0.4")}, root_keys.ksk.dnskey, {});

  const auto outcome =
      resolver.resolve(Name::of("any.thing.wild.test"), RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR);
  EXPECT_EQ(outcome.security, dnssec::Security::Secure);
  EXPECT_TRUE(outcome.errors.empty());
  ASSERT_FALSE(outcome.response.answer.empty());
  EXPECT_EQ(outcome.response.answer.front().name,
            Name::of("any.thing.wild.test"));
}

}  // namespace
