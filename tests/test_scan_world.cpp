// White-box ScanWorld tests: per-category child-zone construction, the
// on-demand synthesis determinism, provider pools and the CSV exporters.
#include <gtest/gtest.h>

#include "scan/export.hpp"
#include "scan/scanner.hpp"
#include "scan/world.hpp"

namespace {

using namespace ede;
using namespace ede::scan;
using dns::Name;
using dns::RRType;

class ScanWorldFixture : public ::testing::Test {
 protected:
  ScanWorldFixture()
      : population_(generate_population([] {
          PopulationConfig config;
          config.total_domains = 3000;
          config.seed = 21;
          return config;
        }())),
        network_(std::make_shared<sim::Network>(
            std::make_shared<sim::Clock>())),
        world_(network_, population_) {}

  const DomainSpec* first_of(Category category) const {
    for (const auto& domain : population_.domains) {
      if (domain.category == category) return &domain;
    }
    return nullptr;
  }

  Population population_;
  std::shared_ptr<sim::Network> network_;
  ScanWorld world_;
};

TEST_F(ScanWorldFixture, ChildZoneSynthesisIsDeterministic) {
  const auto* domain = first_of(Category::Healthy);
  ASSERT_NE(domain, nullptr);
  const auto a = world_.build_child_zone(*domain);
  const auto b = world_.build_child_zone(*domain);
  EXPECT_EQ(a->record_count(), b->record_count());
  EXPECT_EQ(a->origin(), b->origin());
  // Signatures are bit-identical because keys derive from the zone name.
  const auto sa = a->signatures(a->origin(), RRType::A);
  const auto sb = b->signatures(b->origin(), RRType::A);
  ASSERT_FALSE(sa.empty());
  EXPECT_EQ(sa.front().signature, sb.front().signature);
}

TEST_F(ScanWorldFixture, HealthyZonesAreFullySigned) {
  const auto* domain = first_of(Category::Healthy);
  ASSERT_NE(domain, nullptr);
  const auto zone = world_.build_child_zone(*domain);
  EXPECT_NE(zone->find(zone->origin(), RRType::DNSKEY), nullptr);
  EXPECT_FALSE(zone->signatures(zone->origin(), RRType::A).empty());
  EXPECT_NE(zone->find(zone->origin(), RRType::NSEC3PARAM), nullptr);
}

TEST_F(ScanWorldFixture, LameZonesAreUnsignedAndPointAtDeadPools) {
  for (const auto category : {Category::LameRefused, Category::LameTimeout,
                              Category::LameUnroutable}) {
    const auto* domain = first_of(category);
    ASSERT_NE(domain, nullptr) << to_string(category);
    const auto zone = world_.build_child_zone(*domain);
    EXPECT_EQ(zone->find(zone->origin(), RRType::DNSKEY), nullptr)
        << to_string(category);
    const auto plan = plan_for(category);
    const auto address = world_.provider_address(plan.pool, domain->provider);
    if (category == Category::LameUnroutable) {
      EXPECT_FALSE(address.is_routable());
    } else {
      EXPECT_TRUE(address.is_routable());
    }
  }
}

TEST_F(ScanWorldFixture, StandbyZoneCarriesThreeKeys) {
  const auto* domain = first_of(Category::StandbyKsk);
  ASSERT_NE(domain, nullptr);
  const auto zone = world_.build_child_zone(*domain);
  const auto* dnskey = zone->find(zone->origin(), RRType::DNSKEY);
  ASSERT_NE(dnskey, nullptr);
  EXPECT_EQ(dnskey->rdatas.size(), 3u);
}

TEST_F(ScanWorldFixture, CnameLoopZoneLoops) {
  const auto* domain = first_of(Category::CnameLoop);
  ASSERT_NE(domain, nullptr);
  const auto zone = world_.build_child_zone(*domain);
  const auto* apex_cname = zone->find(zone->origin(), RRType::CNAME);
  ASSERT_NE(apex_cname, nullptr);
  // Follow the chain three hops: it must never leave the zone.
  Name cursor = zone->origin();
  for (int hop = 0; hop < 3; ++hop) {
    const auto* link = zone->find(cursor, RRType::CNAME);
    ASSERT_NE(link, nullptr) << cursor.to_string();
    cursor = std::get<dns::CnameRdata>(link->rdatas.front()).target;
    EXPECT_TRUE(cursor.is_subdomain_of(zone->origin()));
  }
}

TEST_F(ScanWorldFixture, PartialFailZoneHasTwoNameservers) {
  const auto* domain = first_of(Category::PartialFail);
  ASSERT_NE(domain, nullptr);
  const auto zone = world_.build_child_zone(*domain);
  const auto* ns = zone->find(zone->origin(), RRType::NS);
  ASSERT_NE(ns, nullptr);
  EXPECT_EQ(ns->rdatas.size(), 2u);
}

TEST_F(ScanWorldFixture, LookupFindsExactlyRegisteredNames) {
  const auto& any = population_.domains.front();
  EXPECT_EQ(world_.lookup(Name::of(any.fqdn)), &any);
  EXPECT_EQ(world_.lookup(Name::of("not-registered.example")), nullptr);
}

TEST_F(ScanWorldFixture, ProviderPoolsAreBoundedAndDisjoint) {
  std::map<int, std::set<std::string>> by_pool;
  for (const auto pool :
       {ServingPlan::Pool::Healthy, ServingPlan::Pool::Refused,
        ServingPlan::Pool::Timeout, ServingPlan::Pool::Unroutable,
        ServingPlan::Pool::Mangle, ServingPlan::Pool::NotAuth}) {
    for (std::uint32_t slot = 0; slot < 300; slot += 7) {
      by_pool[static_cast<int>(pool)].insert(
          world_.provider_address(pool, slot).to_string());
    }
  }
  // Pools are non-empty, bounded, and pairwise disjoint.
  for (auto a = by_pool.begin(); a != by_pool.end(); ++a) {
    EXPECT_FALSE(a->second.empty());
    EXPECT_LE(a->second.size(), 256u);
    for (auto b = std::next(a); b != by_pool.end(); ++b) {
      for (const auto& address : a->second) {
        EXPECT_EQ(b->second.count(address), 0u)
            << address << " shared between pools " << a->first << " and "
            << b->first;
      }
    }
  }
}

TEST_F(ScanWorldFixture, CsvExportsAreWellFormed) {
  auto resolver = world_.make_resolver(resolver::profile_cloudflare());
  world_.prewarm(resolver);
  Scanner::Options options;
  options.stride = 5;  // fast partial scan is enough for shape checks
  const auto result = Scanner(options).run(resolver, population_);

  const auto s42 = section42_csv(result, population_);
  EXPECT_EQ(s42.rfind("code,name,measured,scaled_up", 0), 0u);
  EXPECT_GT(std::count(s42.begin(), s42.end(), '\n'), 3);

  const auto f1 = figure1_csv(result, population_);
  EXPECT_EQ(f1.rfind("group,ratio_percent,cdf", 0), 0u);
  EXPECT_NE(f1.find("gtld,"), std::string::npos);
  EXPECT_NE(f1.find("cctld,"), std::string::npos);

  const auto f2 = figure2_csv(result);
  EXPECT_EQ(f2.rfind("rank,cdf,noerror_share", 0), 0u);
}

TEST_F(ScanWorldFixture, ScannerStrideScansEveryNth) {
  auto resolver = world_.make_resolver(resolver::profile_cloudflare());
  Scanner::Options options;
  options.stride = 10;
  const auto result = Scanner(options).run(resolver, population_);
  EXPECT_EQ(result.total_domains, (population_.domains.size() + 9) / 10);
}

}  // namespace
