// RDATA tests: encode/decode round-trips for every modeled type
// (parameterized), the NSEC/NSEC3 type bitmap, RFC 3597 unknown types and
// malformed-rdata rejection.
#include <gtest/gtest.h>

#include "crypto/encoding.hpp"
#include "dnscore/rdata.hpp"
#include "dnscore/wire.hpp"

namespace {

using namespace ede::dns;
using ede::crypto::Bytes;

Rdata roundtrip(const Rdata& rdata) {
  WireWriter w;
  encode_rdata(w, rdata, /*compress=*/false);
  WireReader r(w.data());
  auto decoded = decode_rdata(r, rdata_type(rdata), w.size());
  EXPECT_TRUE(decoded.ok()) << (decoded.ok() ? "" : decoded.error().message);
  return std::move(decoded).take();
}

class RdataRoundTrip : public ::testing::TestWithParam<Rdata> {};

TEST_P(RdataRoundTrip, EncodeDecodeIsIdentity) {
  const Rdata& original = GetParam();
  EXPECT_EQ(roundtrip(original), original);
}

TEST_P(RdataRoundTrip, PresentationFormatIsNonEmptyOrA) {
  // Every modeled type has a printable presentation.
  EXPECT_FALSE(rdata_to_string(GetParam()).empty());
}

Rdata sample_soa() {
  SoaRdata soa;
  soa.mname = Name::of("ns1.example.com");
  soa.rname = Name::of("hostmaster.example.com");
  soa.serial = 2023051500;
  soa.refresh = 7200;
  soa.retry = 3600;
  soa.expire = 1209600;
  soa.minimum = 300;
  return soa;
}

Rdata sample_rrsig() {
  RrsigRdata sig;
  sig.type_covered = RRType::A;
  sig.algorithm = 8;
  sig.labels = 2;
  sig.original_ttl = 3600;
  sig.expiration = 1700600000;
  sig.inception = 1700000000;
  sig.key_tag = 34567;
  sig.signer_name = Name::of("example.com");
  sig.signature = {1, 2, 3, 4, 5, 6, 7, 8};
  return sig;
}

Rdata sample_nsec3() {
  Nsec3Rdata n3;
  n3.hash_algorithm = 1;
  n3.flags = 1;
  n3.iterations = 12;
  n3.salt = {0xaa, 0xbb, 0xcc, 0xdd};
  n3.next_hashed_owner = Bytes(20, 0x42);
  n3.types = TypeBitmap{{RRType::A, RRType::RRSIG}};
  return n3;
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, RdataRoundTrip,
    ::testing::Values(
        Rdata{ARdata{*Ipv4Address::parse("192.0.2.1")}},
        Rdata{AaaaRdata{*Ipv6Address::parse("2001:db8::1")}},
        Rdata{NsRdata{Name::of("ns1.example.com")}},
        Rdata{CnameRdata{Name::of("target.example.net")}},
        Rdata{PtrRdata{Name::of("host.example.org")}},
        sample_soa(),
        Rdata{MxRdata{10, Name::of("mail.example.com")}},
        Rdata{TxtRdata{{"hello", "world"}}},
        Rdata{TxtRdata{{std::string(255, 'x')}}},
        Rdata{SrvRdata{1, 2, 443, Name::of("svc.example.com")}},
        Rdata{DsRdata{12345, 8, 2, Bytes(32, 0xab)}},
        Rdata{DnskeyRdata{257, 3, 8, Bytes(32, 0xcd)}},
        sample_rrsig(),
        Rdata{NsecRdata{Name::of("next.example.com"),
                        TypeBitmap{{RRType::A, RRType::NS, RRType::SOA}}}},
        sample_nsec3(),
        Rdata{Nsec3ParamRdata{1, 0, 0, {0xab, 0xcd}}},
        Rdata{Nsec3ParamRdata{1, 0, 200, {}}},
        Rdata{OptRdata{{{15, {0x00, 0x09}}, {10, {1, 2, 3, 4}}}}},
        Rdata{UnknownRdata{999, {0xde, 0xad, 0xbe, 0xef}}}));

TEST(TypeBitmap, ContainsAndTypes) {
  TypeBitmap bitmap({RRType::A, RRType::MX, RRType::AAAA});
  EXPECT_TRUE(bitmap.contains(RRType::A));
  EXPECT_TRUE(bitmap.contains(RRType::MX));
  EXPECT_FALSE(bitmap.contains(RRType::NS));
  bitmap.remove(RRType::MX);
  EXPECT_FALSE(bitmap.contains(RRType::MX));
  EXPECT_EQ(bitmap.types().size(), 2u);
}

TEST(TypeBitmap, HighTypesUseSecondWindow) {
  // CAA = 257 lives in window block 1.
  TypeBitmap bitmap({RRType::A, RRType::CAA});
  WireWriter w;
  bitmap.encode(w);
  // Window 0 (A=1: one octet) + window 1 (257 & 0xff = 1: one octet).
  const Bytes expected = {0, 1, 0x40, 1, 1, 0x40};
  EXPECT_EQ(w.data(), expected);
  const auto decoded = TypeBitmap::decode(w.data());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), bitmap);
}

TEST(TypeBitmap, RejectsDescendingWindows) {
  const Bytes bad = {1, 1, 0x40, 0, 1, 0x40};
  EXPECT_FALSE(TypeBitmap::decode(bad).ok());
}

TEST(TypeBitmap, RejectsOversizedWindow) {
  const Bytes bad = {0, 33};
  EXPECT_FALSE(TypeBitmap::decode(bad).ok());
}

TEST(TypeBitmap, EmptyBitmapEncodesToNothing) {
  TypeBitmap bitmap;
  WireWriter w;
  bitmap.encode(w);
  EXPECT_EQ(w.size(), 0u);
}

TEST(DecodeRdata, RejectsLengthMismatch) {
  // An A record with 5 bytes of rdata.
  const Bytes data = {1, 2, 3, 4, 5};
  WireReader r(data);
  EXPECT_FALSE(decode_rdata(r, RRType::A, 5).ok());
}

TEST(DecodeRdata, RejectsTruncatedSoa) {
  const Bytes data = {0};  // just a root mname, nothing else
  WireReader r(data);
  EXPECT_FALSE(decode_rdata(r, RRType::SOA, 1).ok());
}

TEST(DecodeRdata, OptionOverrunPreservedAsGarbledTail) {
  // OPT option claims 10 bytes but only 2 remain. A garbled OPT must not
  // abort the whole message parse — a plain-DNS retry could still save
  // the resolution (RFC 6891 compliance zoo) — so the undecodable bytes
  // ride along verbatim as the trailing tail instead.
  const Bytes data = {0x00, 0x0f, 0x00, 0x0a, 0xab, 0xcd};
  WireReader r(data);
  const auto decoded = decode_rdata(r, RRType::OPT, data.size());
  ASSERT_TRUE(decoded.ok());
  const auto& opt = std::get<OptRdata>(decoded.value());
  EXPECT_TRUE(opt.options.empty());
  EXPECT_EQ(opt.trailing, data);
}

TEST(DecodeRdata, TruncatedOptionHeaderPreservedAsGarbledTail) {
  // Three bytes cannot hold the 4-byte option code+length header.
  const Bytes data = {0x00, 0x0a, 0x00};
  WireReader r(data);
  const auto decoded = decode_rdata(r, RRType::OPT, data.size());
  ASSERT_TRUE(decoded.ok());
  const auto& opt = std::get<OptRdata>(decoded.value());
  EXPECT_TRUE(opt.options.empty());
  EXPECT_EQ(opt.trailing, data);
}

TEST(DecodeRdata, GarbledTailAfterValidOptionKeepsBoth) {
  // One well-formed 2-byte COOKIE option, then an overrunning header.
  const Bytes data = {0x00, 0x0a, 0x00, 0x02, 0xaa, 0xbb,   // option
                      0x00, 0x0f, 0xff, 0xff};              // overrun
  WireReader r(data);
  const auto decoded = decode_rdata(r, RRType::OPT, data.size());
  ASSERT_TRUE(decoded.ok());
  const auto& opt = std::get<OptRdata>(decoded.value());
  ASSERT_EQ(opt.options.size(), 1u);
  EXPECT_EQ(opt.options[0].code, 0x0a);
  EXPECT_EQ(opt.trailing, Bytes({0x00, 0x0f, 0xff, 0xff}));
}

TEST(DecodeRdata, UnknownTypePreservesBytes) {
  const Bytes data = {9, 9, 9};
  WireReader r(data);
  const auto decoded = decode_rdata(r, static_cast<RRType>(4242), 3);
  ASSERT_TRUE(decoded.ok());
  const auto& unknown = std::get<UnknownRdata>(decoded.value());
  EXPECT_EQ(unknown.type, 4242);
  EXPECT_EQ(unknown.data, data);
}

TEST(RdataType, MatchesVariantAlternative) {
  EXPECT_EQ(rdata_type(Rdata{ARdata{}}), RRType::A);
  EXPECT_EQ(rdata_type(Rdata{OptRdata{}}), RRType::OPT);
  EXPECT_EQ(rdata_type(Rdata{UnknownRdata{777, {}}}),
            static_cast<RRType>(777));
}

TEST(Presentation, DsUsesHexDigest) {
  const DsRdata ds{1234, 8, 2, {0xab, 0xcd}};
  EXPECT_EQ(rdata_to_string(Rdata{ds}), "1234 8 2 abcd");
}

TEST(Presentation, Nsec3UsesBase32AndDashForEmptySalt) {
  Nsec3Rdata n3;
  n3.iterations = 0;
  n3.next_hashed_owner = ede::crypto::to_bytes("foobar");
  const auto text = rdata_to_string(Rdata{n3});
  EXPECT_NE(text.find("cpnmuoj1e8"), std::string::npos);
  EXPECT_NE(text.find(" - "), std::string::npos);
}

}  // namespace
