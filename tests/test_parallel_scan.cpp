// Sharded parallel-scan tests: the merge invariant (an N-shard scan
// aggregates byte-identically to the sequential scan), merge
// associativity, shard planning, per-shard seed derivation and the
// stride-zero regression. This suite is also what the TSan verify stage
// runs to prove the workers share nothing mutable.
#include <gtest/gtest.h>

#include "scan/parallel.hpp"
#include "scan/report.hpp"
#include "scan/world.hpp"

namespace {

using namespace ede;
using namespace ede::scan;

PopulationConfig tiny_config() {
  PopulationConfig config;
  config.total_domains = 2500;
  config.seed = 7;
  return config;
}

/// Field-by-field equality of everything the paper's figures are built
/// from. Deliberately *excludes* wall/sim times and the transport and
/// upstream-query counters: those measure per-worker cache warm-up, which
/// legitimately varies with the shard count.
void expect_same_aggregates(const ScanResult& a, const ScanResult& b) {
  EXPECT_EQ(a.total_domains, b.total_domains);
  EXPECT_EQ(a.domains_with_ede, b.domains_with_ede);
  EXPECT_EQ(a.noerror_with_ede, b.noerror_with_ede);
  EXPECT_EQ(a.servfail_domains, b.servfail_domains);
  EXPECT_EQ(a.lame_union, b.lame_union);

  ASSERT_EQ(a.per_code.size(), b.per_code.size());
  for (const auto& [code, stats] : a.per_code) {
    ASSERT_TRUE(b.per_code.count(code)) << "code " << code;
    EXPECT_EQ(stats.domains, b.per_code.at(code).domains) << "code " << code;
    EXPECT_EQ(stats.sample_extra_text, b.per_code.at(code).sample_extra_text)
        << "code " << code;
  }

  ASSERT_EQ(a.per_tld.size(), b.per_tld.size());
  for (std::size_t i = 0; i < a.per_tld.size(); ++i) {
    EXPECT_EQ(a.per_tld[i].scanned, b.per_tld[i].scanned) << "tld " << i;
    EXPECT_EQ(a.per_tld[i].with_ede, b.per_tld[i].with_ede) << "tld " << i;
  }

  ASSERT_EQ(a.tranco_hits.size(), b.tranco_hits.size());
  for (std::size_t i = 0; i < a.tranco_hits.size(); ++i) {
    EXPECT_EQ(a.tranco_hits[i].rank, b.tranco_hits[i].rank);
    EXPECT_EQ(a.tranco_hits[i].noerror, b.tranco_hits[i].noerror);
  }

  ASSERT_EQ(a.codes_by_category.size(), b.codes_by_category.size());
  for (const auto& [category, codes] : a.codes_by_category) {
    ASSERT_TRUE(b.codes_by_category.count(category));
    EXPECT_EQ(codes, b.codes_by_category.at(category));
  }

  // The hardening pipeline's deterministic counters are per-domain facts
  // (the scan world's misbehaviors are scripted per server, not random),
  // so like the classification they must be shard-count-invariant. Only
  // transport-timing-dependent counters (QID/oversize rejections under a
  // corrupting fault) are excluded, mirroring the transport stats above.
  EXPECT_EQ(a.hardening.rejected_question_mismatch,
            b.hardening.rejected_question_mismatch);
  EXPECT_EQ(a.hardening.scrubbed_records, b.hardening.scrubbed_records);
  EXPECT_EQ(a.hardening.coalesced_queries, b.hardening.coalesced_queries);
  EXPECT_EQ(a.hardening.servfail_cache_hits, b.hardening.servfail_cache_hits);
  EXPECT_EQ(a.hardening.watchdog_trips, b.hardening.watchdog_trips);
  // The RFC 6891 signal-driven counters (FORMERR/BADVERS/garble seen)
  // are per-response facts of scripted servers, shard-count-invariant
  // like the gate counters above. The capability-memory counters
  // (verdicts learned, dances skipped) are deliberately NOT compared:
  // like the transport stats, they measure per-worker InfraCache warm-up
  // — every shard re-learns the timeout pools for itself.
  EXPECT_EQ(a.hardening.edns_formerr_seen, b.hardening.edns_formerr_seen);
  EXPECT_EQ(a.hardening.edns_badvers_seen, b.hardening.edns_badvers_seen);
  EXPECT_EQ(a.hardening.edns_garbled_opt, b.hardening.edns_garbled_opt);
}

/// Scan [begin, end) with a freshly built isolated stack — what one
/// parallel worker does, minus the thread.
ScanResult scan_range(const Population& population, std::size_t begin,
                      std::size_t end, std::uint64_t seed) {
  auto network = std::make_shared<sim::Network>(
      std::make_shared<sim::Clock>(), seed);
  ScanWorld world(network, population);
  auto resolver = world.make_resolver(resolver::profile_cloudflare());
  world.prewarm(resolver, begin, end);
  return Scanner{}.run(resolver, population, begin, end);
}

TEST(PlanShards, ContiguousCoverWithDerivedSeeds) {
  const auto plans = plan_shards(1000, 3, 0xabcd);
  ASSERT_EQ(plans.size(), 3u);
  EXPECT_EQ(plans.front().begin, 0u);
  EXPECT_EQ(plans.back().end, 1000u);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    EXPECT_EQ(plans[i].shard_id, i);
    EXPECT_EQ(plans[i].seed, 0xabcd ^ static_cast<std::uint64_t>(i));
    if (i > 0) {
      EXPECT_EQ(plans[i].begin, plans[i - 1].end);
    }
    EXPECT_LE(plans[i].begin, plans[i].end);
  }
}

TEST(PlanShards, ClampsToThePopulationAndFloorsAtOne) {
  EXPECT_EQ(plan_shards(5, 64, 1).size(), 5u);
  EXPECT_EQ(plan_shards(0, 8, 1).size(), 1u);
  EXPECT_GE(plan_shards(100, 0, 1).size(), 1u);  // 0 = hardware default
  EXPECT_GE(default_shard_count(), 1u);
}

TEST(ScanMerge, TwoHalvesMergeToTheSequentialScan) {
  const auto population = generate_population(tiny_config());
  const auto sequential =
      scan_range(population, 0, population.domains.size(), 0x1ede);

  const std::size_t mid = population.domains.size() / 2;
  ScanResult merged = scan_range(population, 0, mid, 0x1ede);
  merged.merge(scan_range(population, mid, population.domains.size(),
                          0x1ede ^ 1));
  expect_same_aggregates(merged, sequential);
}

TEST(ScanMerge, IsAssociative) {
  const auto population = generate_population(tiny_config());
  const std::size_t n = population.domains.size();
  const auto a = scan_range(population, 0, n / 3, 1);
  const auto b = scan_range(population, n / 3, 2 * n / 3, 2);
  const auto c = scan_range(population, 2 * n / 3, n, 3);

  ScanResult left = a;  // (a + b) + c
  left.merge(b);
  left.merge(c);
  ScanResult bc = b;  // a + (b + c)
  bc.merge(c);
  ScanResult right = a;
  right.merge(bc);
  expect_same_aggregates(left, right);
}

TEST(ParallelScan, ShardCountDoesNotChangeTheAggregates) {
  const auto population = generate_population(tiny_config());
  const auto profile = resolver::profile_cloudflare();

  ParallelScanOptions options;
  options.shards = 1;
  const auto one = run_parallel_scan(population, profile, options);
  options.shards = 2;
  const auto two = run_parallel_scan(population, profile, options);
  options.shards = 8;
  const auto eight = run_parallel_scan(population, profile, options);

  ASSERT_EQ(one.shards.size(), 1u);
  ASSERT_EQ(two.shards.size(), 2u);
  ASSERT_EQ(eight.shards.size(), 8u);
  expect_same_aggregates(two.merged, one.merged);
  expect_same_aggregates(eight.merged, one.merged);

  // The invariant the paper's tables hang off, stated explicitly.
  EXPECT_EQ(eight.merged.lame_union, one.merged.lame_union);
  EXPECT_EQ(eight.merged.total_domains, population.domains.size());
}

// The fixed-seed inflight-equivalence contract: routing the scan through
// the async engine must not change anything the paper's figures are
// built from, whatever the admission window. Within the engine family
// every resolution's timeline is rebased to the batch epoch, so window 1
// (pure serial chaining) and a window wider than the whole shard see
// identical per-domain worlds; only load counters (cache/holddown hit
// rates, sim makespan, the in-flight high-water mark) may move.
TEST(ParallelScan, InflightWindowDoesNotChangeTheAggregates) {
  const auto population = generate_population(tiny_config());
  const auto profile = resolver::profile_cloudflare();

  for (const bool with_latency : {false, true}) {
    ParallelScanOptions options;
    options.shards = 1;
    if (with_latency) {
      sim::LatencyModel latency;
      latency.enabled = true;
      options.latency = latency;
    }
    options.scanner.inflight = 1;
    const auto serial = run_parallel_scan(population, profile, options);
    options.scanner.inflight = 4096;
    const auto wide = run_parallel_scan(population, profile, options);

    expect_same_aggregates(serial.merged, wide.merged);
    EXPECT_EQ(serial.merged.max_in_flight, 1u);
    EXPECT_GT(wide.merged.max_in_flight, 1u);
    if (with_latency) {
      // Overlapped waits shorten the batch; serial pays the full sum.
      EXPECT_GT(serial.merged.sim_seconds, 0.0);
      EXPECT_LT(wide.merged.sim_seconds, serial.merged.sim_seconds);
    } else {
      EXPECT_EQ(serial.merged.sim_seconds, 0.0);
      EXPECT_EQ(wide.merged.sim_seconds, 0.0);
    }
  }
}

// And the engine family aggregates identically to the classic blocking
// path when latency is off (waits are free, so the classic cumulative
// clock and the engine's epoch-rebased timelines coincide).
TEST(ParallelScan, EngineMatchesClassicPathWithLatencyOff) {
  const auto population = generate_population(tiny_config());
  const auto profile = resolver::profile_cloudflare();

  ParallelScanOptions options;
  options.shards = 1;
  const auto classic = run_parallel_scan(population, profile, options);
  options.scanner.inflight = 256;
  const auto engine = run_parallel_scan(population, profile, options);
  expect_same_aggregates(classic.merged, engine.merged);
}

// The merged hardening counters are exactly the sum over the shards, and
// the scan world actually exercises the response-acceptance gate: its
// Mangle pool answers with a rewritten question, so the question-mismatch
// counter must be hot — these assertions are not vacuous.
TEST(ParallelScan, HardeningCountersSumAcrossShards) {
  const auto population = generate_population(tiny_config());
  ParallelScanOptions options;
  options.shards = 4;
  const auto scan =
      run_parallel_scan(population, resolver::profile_cloudflare(), options);
  ASSERT_EQ(scan.shards.size(), 4u);

  resolver::HardeningStats sum;
  for (const auto& shard : scan.shards) {
    const auto& h = shard.result.hardening;
    sum.rejected_qid_mismatch += h.rejected_qid_mismatch;
    sum.rejected_question_mismatch += h.rejected_question_mismatch;
    sum.rejected_oversize += h.rejected_oversize;
    sum.scrubbed_records += h.scrubbed_records;
    sum.coalesced_queries += h.coalesced_queries;
    sum.servfail_cache_hits += h.servfail_cache_hits;
    sum.watchdog_trips += h.watchdog_trips;
  }
  const auto& merged = scan.merged.hardening;
  EXPECT_EQ(merged.rejected_qid_mismatch, sum.rejected_qid_mismatch);
  EXPECT_EQ(merged.rejected_question_mismatch,
            sum.rejected_question_mismatch);
  EXPECT_EQ(merged.rejected_oversize, sum.rejected_oversize);
  EXPECT_EQ(merged.scrubbed_records, sum.scrubbed_records);
  EXPECT_EQ(merged.coalesced_queries, sum.coalesced_queries);
  EXPECT_EQ(merged.servfail_cache_hits, sum.servfail_cache_hits);
  EXPECT_EQ(merged.watchdog_trips, sum.watchdog_trips);

  // The gate sees real hostile traffic (mangled questions) on this world;
  // the spoof-shaped rejections stay zero on its fault-free transport.
  EXPECT_GT(merged.rejected_question_mismatch, 0u);
  EXPECT_GT(merged.servfail_cache_hits, 0u);
  EXPECT_EQ(merged.rejected_qid_mismatch, 0u);
  EXPECT_EQ(merged.rejected_oversize, 0u);

  // The scan world's authorities answer EDNS compliantly (the paper's
  // categories model lameness and DNSSEC breakage, not RFC 6891 abuse),
  // so the signal-driven dance never fires — the clean-path guarantee the
  // perf gate leans on. The *timeout* pools, though, teach this t=2
  // profile plain-only verdicts at server abandonment, exactly like a
  // real Unbound facing a dead nameserver — so the capability memory is
  // demonstrably hot on the paper's own population, and its counters sum
  // exactly across shards.
  EXPECT_EQ(merged.edns_fallback_probes, 0u);
  EXPECT_EQ(merged.edns_degraded_success, 0u);
  EXPECT_EQ(merged.edns_formerr_seen, 0u);
  EXPECT_EQ(merged.edns_badvers_seen, 0u);
  EXPECT_EQ(merged.edns_garbled_opt, 0u);
  EXPECT_GT(scan.merged.transport.edns_broken_learned, 0u);
  std::uint64_t skips = 0;
  std::uint64_t learned = 0;
  for (const auto& shard : scan.shards) {
    skips += shard.result.hardening.edns_capability_skips;
    learned += shard.result.transport.edns_broken_learned;
  }
  EXPECT_EQ(merged.edns_capability_skips, skips);
  EXPECT_EQ(scan.merged.transport.edns_broken_learned, learned);
}

// The merge arithmetic for the EDNS capability stats, independent of any
// world: counters learned on different shards sum exactly, associatively,
// and in any grouping — the shard-invariance contract for the compliance
// breakdown the report renders.
TEST(ScanMerge, EdnsCapabilityStatsSumShardInvariantly) {
  const auto shard = [](std::uint64_t scale) {
    ScanResult r;
    r.total_domains = scale;
    r.hardening.edns_formerr_seen = 1 * scale;
    r.hardening.edns_badvers_seen = 2 * scale;
    r.hardening.edns_garbled_opt = 3 * scale;
    r.hardening.edns_fallback_probes = 5 * scale;
    r.hardening.edns_degraded_success = 7 * scale;
    r.hardening.edns_capability_skips = 11 * scale;
    r.transport.edns_broken_learned = 13 * scale;
    return r;
  };

  // ((a + b) + c) vs (a + (b + c)).
  ScanResult left = shard(1);
  left.merge(shard(10));
  left.merge(shard(100));
  ScanResult tail = shard(10);
  tail.merge(shard(100));
  ScanResult right = shard(1);
  right.merge(tail);

  for (const auto* r : {&left, &right}) {
    EXPECT_EQ(r->hardening.edns_formerr_seen, 111u);
    EXPECT_EQ(r->hardening.edns_badvers_seen, 222u);
    EXPECT_EQ(r->hardening.edns_garbled_opt, 333u);
    EXPECT_EQ(r->hardening.edns_fallback_probes, 555u);
    EXPECT_EQ(r->hardening.edns_degraded_success, 777u);
    EXPECT_EQ(r->hardening.edns_capability_skips, 1221u);
    EXPECT_EQ(r->transport.edns_broken_learned, 1443u);
  }

  // And the report's compliance breakdown renders them (only when hot).
  const auto population = generate_population(tiny_config());
  const auto rendered = render_section42(left, population);
  EXPECT_NE(rendered.find("edns compliance"), std::string::npos);
  EXPECT_NE(rendered.find("1443 servers learned plain-only"),
            std::string::npos);
  const auto clean = render_section42(ScanResult{}, population);
  EXPECT_EQ(clean.find("edns compliance"), std::string::npos);
}

TEST(ParallelScan, SimClockTimingIsDeterministic) {
  const auto population = generate_population(tiny_config());
  const auto profile = resolver::profile_cloudflare();
  ParallelScanOptions options;
  options.shards = 2;
  const auto first = run_parallel_scan(population, profile, options);
  const auto second = run_parallel_scan(population, profile, options);
  // Host wall time jitters run to run; the simulated clock must not.
  for (std::size_t i = 0; i < first.shards.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.shards[i].result.sim_seconds,
                     second.shards[i].result.sim_seconds);
  }
  EXPECT_DOUBLE_EQ(first.merged.sim_seconds, second.merged.sim_seconds);
}

TEST(ParallelScan, StridedShardsMatchTheStridedSequentialScan) {
  const auto population = generate_population(tiny_config());
  const auto profile = resolver::profile_cloudflare();
  ParallelScanOptions options;
  options.scanner.stride = 3;
  options.shards = 1;
  const auto one = run_parallel_scan(population, profile, options);
  options.shards = 4;
  const auto four = run_parallel_scan(population, profile, options);
  expect_same_aggregates(four.merged, one.merged);
}

TEST(ParallelScan, RendersAShardSummary) {
  const auto population = generate_population(tiny_config());
  ParallelScanOptions options;
  options.shards = 2;
  const auto scan =
      run_parallel_scan(population, resolver::profile_cloudflare(), options);
  const auto summary = render_shard_summary(scan);
  EXPECT_NE(summary.find("per-worker throughput"), std::string::npos);
  EXPECT_NE(summary.find("merged"), std::string::npos);
  EXPECT_NE(summary.find("occupancy"), std::string::npos);
}

TEST(ScannerStride, ZeroStrideIsClampedAndTerminates) {
  auto config = tiny_config();
  config.total_domains = 300;
  const auto population = generate_population(config);
  auto network =
      std::make_shared<sim::Network>(std::make_shared<sim::Clock>());
  ScanWorld world(network, population);
  auto resolver = world.make_resolver(resolver::profile_cloudflare());
  world.prewarm(resolver);

  Scanner::Options options;
  options.stride = 0;  // used to spin forever in Scanner::run
  const auto result = Scanner(options).run(resolver, population);
  EXPECT_EQ(result.total_domains, population.domains.size());
}

}  // namespace
