// Parameterized sweeps over the DNSSEC algorithm registry: sign/verify
// round-trips, DS digest types, key tags and full zone signing must hold
// for every modeled algorithm number, not just the default RSASHA256.
#include <gtest/gtest.h>

#include "dnssec/sign.hpp"
#include "dnssec/validate.hpp"
#include "zone/signer.hpp"

namespace {

using namespace ede;
using namespace ede::dnssec;
using dns::Name;
using dns::RRset;
using dns::RRType;

class AlgorithmSweep : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(AlgorithmSweep, SignVerifyRoundTrip) {
  const std::uint8_t algorithm = GetParam();
  const Name zone = Name::of("algo.example");
  const auto zsk = make_zsk(zone, algorithm);
  const RRset rrset{zone, RRType::A, dns::RRClass::IN, 300,
                    {dns::Rdata{dns::ARdata{dns::Ipv4Address{0x01020304u}}}}};
  const auto sig = sign_rrset(rrset, zsk, zone, {1000, 2000});
  EXPECT_EQ(sig.algorithm, algorithm);
  EXPECT_EQ(sig.signature.size(), algorithm_info(algorithm).signature_size);
  EXPECT_TRUE(verify_rrset(rrset, sig, zsk.dnskey));

  // Signatures never verify across algorithm numbers, even with identical
  // key material (the testbed's ds-bad-key-algo case depends on this).
  auto cross = sig;
  cross.algorithm = algorithm == 8 ? 13 : 8;
  EXPECT_FALSE(verify_rrset(rrset, cross, zsk.dnskey));
}

TEST_P(AlgorithmSweep, KeyTagsDifferAcrossAlgorithms) {
  const std::uint8_t algorithm = GetParam();
  const Name zone = Name::of("algo.example");
  const auto a = make_ksk(zone, algorithm);
  const auto b = make_ksk(zone, algorithm == 8 ? 13 : 8);
  EXPECT_NE(a.tag(), b.tag());
}

TEST_P(AlgorithmSweep, WholeZoneSignsAndValidates) {
  const std::uint8_t algorithm = GetParam();
  const Name origin = Name::of("sweep.example");
  zone::Zone z(origin);
  dns::SoaRdata soa;
  soa.mname = origin;
  soa.rname = origin;
  z.add(origin, RRType::SOA, soa);
  z.add(origin, RRType::A, dns::ARdata{dns::Ipv4Address{0x5db8d801u}});
  zone::ZoneKeys keys;
  keys.ksk = make_ksk(origin, algorithm);
  keys.zsk = make_zsk(origin, algorithm);
  zone::sign_zone(z, keys, {});

  // Trust the zone via its DS and validate the apex A RRset, with a
  // validator configured to support this algorithm.
  ValidatorConfig config;
  config.supported_algorithms.insert(algorithm);
  const auto* dnskey = z.find(origin, RRType::DNSKEY);
  ASSERT_NE(dnskey, nullptr);
  const auto trust = validate_zone_keys(
      origin, {make_ds(origin, keys.ksk.dnskey, 2)}, dnskey,
      z.signatures(origin, RRType::DNSKEY), sim::kDefaultNow, config);
  ASSERT_EQ(trust.security, Security::Secure) << unsigned{algorithm};

  const auto* a = z.find(origin, RRType::A);
  const auto check = validate_answer_rrset(
      *a, z.signatures(origin, RRType::A), origin, trust.zone_keys,
      sim::kDefaultNow, config);
  EXPECT_EQ(check.security, Security::Secure) << unsigned{algorithm};
}

INSTANTIATE_TEST_SUITE_P(RegisteredAlgorithms, AlgorithmSweep,
                         ::testing::Values(1, 3, 5, 7, 8, 10, 12, 13, 14, 15,
                                           16),
                         [](const ::testing::TestParamInfo<std::uint8_t>& i) {
                           std::string name = algorithm_name(i.param);
                           for (char& c : name) {
                             if (c == '-' || c == '/') c = '_';
                           }
                           return name;
                         });

class DigestSweep : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(DigestSweep, DsRoundTripsForEveryKnownDigest) {
  const std::uint8_t digest_type = GetParam();
  const Name zone = Name::of("digest.example");
  const auto ksk = make_ksk(zone, 8);
  const auto ds = make_ds(zone, ksk.dnskey, digest_type);
  EXPECT_EQ(ds.digest.size(), digest_size(digest_type).value());
  EXPECT_TRUE(ds_matches(zone, ds, ksk.dnskey));
  auto corrupted = ds;
  corrupted.digest.back() ^= 0x01;
  EXPECT_FALSE(ds_matches(zone, corrupted, ksk.dnskey));
}

INSTANTIATE_TEST_SUITE_P(KnownDigests, DigestSweep,
                         ::testing::Values(1, 2, 3, 4));

class IterationSweep : public ::testing::TestWithParam<std::uint16_t> {};

TEST_P(IterationSweep, Nsec3HashDiffersPerIterationCount) {
  const auto iterations = GetParam();
  const crypto::Bytes salt = {0xab, 0xcd};
  const auto hash = nsec3_hash(Name::of("iter.example"), salt, iterations);
  EXPECT_EQ(hash.size(), 20u);
  if (iterations > 0) {
    EXPECT_NE(hash, nsec3_hash(Name::of("iter.example"), salt,
                               static_cast<std::uint16_t>(iterations - 1)));
  }
}

TEST_P(IterationSweep, ZoneSignsWithTheConfiguredIterations) {
  const auto iterations = GetParam();
  const Name origin = Name::of("iters.example");
  zone::Zone z(origin);
  dns::SoaRdata soa;
  soa.mname = origin;
  soa.rname = origin;
  z.add(origin, RRType::SOA, soa);
  zone::SigningPolicy policy;
  policy.nsec3_iterations = iterations;
  zone::sign_zone(z, zone::make_zone_keys(origin), policy);
  const auto* param = z.find(origin, RRType::NSEC3PARAM);
  ASSERT_NE(param, nullptr);
  EXPECT_EQ(std::get<dns::Nsec3ParamRdata>(param->rdatas.front()).iterations,
            iterations);
}

INSTANTIATE_TEST_SUITE_P(IterationCounts, IterationSweep,
                         ::testing::Values(0, 1, 10, 150, 200));

}  // namespace
