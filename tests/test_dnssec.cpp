// DNSSEC primitive tests: key tags, DS construction/matching, NSEC3
// hashing (including the RFC 5155 Appendix A vector), signing/verifying,
// temporal classification and the algorithm registry.
#include <gtest/gtest.h>

#include "crypto/encoding.hpp"
#include "dnssec/algorithm.hpp"
#include "dnssec/keys.hpp"
#include "dnssec/nsec3.hpp"
#include "dnssec/sign.hpp"
#include "dnssec/validate.hpp"

namespace {

using namespace ede::dnssec;
using ede::dns::DnskeyRdata;
using ede::dns::Name;
using ede::dns::RRset;
using ede::dns::RRType;

TEST(Algorithms, RegistryStatuses) {
  EXPECT_EQ(algorithm_info(1).status, AlgorithmStatus::Deprecated);   // RSAMD5
  EXPECT_EQ(algorithm_info(3).status, AlgorithmStatus::Deprecated);   // DSA
  EXPECT_EQ(algorithm_info(8).status, AlgorithmStatus::Active);
  EXPECT_EQ(algorithm_info(13).status, AlgorithmStatus::Active);
  EXPECT_EQ(algorithm_info(15).status, AlgorithmStatus::Active);
  EXPECT_EQ(algorithm_info(16).status, AlgorithmStatus::Active);      // Ed448
  EXPECT_EQ(algorithm_info(12).status, AlgorithmStatus::Optional);    // GOST
  EXPECT_EQ(algorithm_info(100).status, AlgorithmStatus::Unassigned);
  EXPECT_EQ(algorithm_info(200).status, AlgorithmStatus::Reserved);
  EXPECT_EQ(algorithm_name(8), "RSASHA256");
}

TEST(Algorithms, DefaultSupportedSetExcludesDeprecated) {
  const auto& supported = default_supported_algorithms();
  EXPECT_EQ(supported.count(1), 0u);
  EXPECT_EQ(supported.count(3), 0u);
  EXPECT_EQ(supported.count(8), 1u);
  EXPECT_EQ(supported.count(16), 1u);
}

TEST(Algorithms, DigestTypes) {
  EXPECT_TRUE(is_known_digest_type(1));
  EXPECT_TRUE(is_known_digest_type(4));
  EXPECT_FALSE(is_known_digest_type(0));
  EXPECT_FALSE(is_known_digest_type(100));
  EXPECT_EQ(digest_size(2).value(), 32u);
  EXPECT_EQ(digest_size(4).value(), 48u);
  EXPECT_FALSE(digest_size(100).has_value());
}

TEST(KeyTag, DeterministicAndOrderSensitive) {
  const auto key = make_ksk(Name::of("example.com"), 8);
  const auto tag1 = key_tag(key.dnskey);
  const auto tag2 = key_tag(key.dnskey);
  EXPECT_EQ(tag1, tag2);

  DnskeyRdata altered = key.dnskey;
  altered.public_key[0] ^= 0xff;
  EXPECT_NE(key_tag(altered), tag1);
}

TEST(KeyTag, FlagsAffectTheTag) {
  auto key = make_ksk(Name::of("example.com"), 8).dnskey;
  const auto tag = key_tag(key);
  key.flags = DnskeyRdata::kZskFlags;
  EXPECT_NE(key_tag(key), tag);
}

TEST(Keys, KskAndZskDiffer) {
  const Name zone = Name::of("example.com");
  const auto ksk = make_ksk(zone, 8);
  const auto zsk = make_zsk(zone, 8);
  EXPECT_EQ(ksk.dnskey.flags, 257);
  EXPECT_EQ(zsk.dnskey.flags, 256);
  EXPECT_TRUE(ksk.dnskey.is_sep());
  EXPECT_FALSE(zsk.dnskey.is_sep());
  EXPECT_NE(ksk.dnskey.public_key, zsk.dnskey.public_key);
  EXPECT_NE(ksk.tag(), zsk.tag());
}

TEST(Keys, DerivationIsDeterministicPerZone) {
  const auto a = make_ksk(Name::of("example.com"), 8);
  const auto b = make_ksk(Name::of("example.com"), 8);
  const auto c = make_ksk(Name::of("other.com"), 8);
  EXPECT_EQ(a.dnskey, b.dnskey);
  EXPECT_NE(a.dnskey.public_key, c.dnskey.public_key);
}

TEST(Ds, MatchesItsOwnKey) {
  const Name zone = Name::of("example.com");
  const auto ksk = make_ksk(zone, 8);
  for (const std::uint8_t digest_type :
       {std::uint8_t{1}, std::uint8_t{2}, std::uint8_t{4}}) {
    const auto ds = make_ds(zone, ksk.dnskey, digest_type);
    EXPECT_EQ(ds.key_tag, ksk.tag());
    EXPECT_EQ(ds.algorithm, 8);
    EXPECT_EQ(ds.digest.size(), digest_size(digest_type).value());
    EXPECT_TRUE(ds_matches(zone, ds, ksk.dnskey)) << unsigned{digest_type};
  }
}

TEST(Ds, OwnerNameIsPartOfTheDigest) {
  const auto ksk = make_ksk(Name::of("example.com"), 8);
  const auto ds = make_ds(Name::of("example.com"), ksk.dnskey, 2);
  EXPECT_FALSE(ds_matches(Name::of("other.com"), ds, ksk.dnskey));
}

TEST(Ds, MismatchDetection) {
  const Name zone = Name::of("example.com");
  const auto ksk = make_ksk(zone, 8);
  auto ds = make_ds(zone, ksk.dnskey, 2);
  ds.digest[0] ^= 0xff;
  EXPECT_FALSE(ds_matches(zone, ds, ksk.dnskey));
}

TEST(Nsec3, Rfc5155AppendixAVector) {
  // H(example) with salt aabbccdd, 12 iterations
  //   = 0p9mhaveqvm6t7vbl5lop2u3t2rp3tom (RFC 5155 Appendix A).
  const auto salt = ede::crypto::from_hex("aabbccdd").value();
  const auto hash = nsec3_hash(Name::of("example"), salt, 12);
  EXPECT_EQ(ede::crypto::to_base32hex(hash),
            "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom");
}

TEST(Nsec3, HashIsCaseInsensitive) {
  const auto salt = ede::crypto::from_hex("aabbccdd").value();
  EXPECT_EQ(nsec3_hash(Name::of("Example"), salt, 12),
            nsec3_hash(Name::of("example"), salt, 12));
}

TEST(Nsec3, IterationsChangeTheHash) {
  const ede::crypto::Bytes salt = {0xab};
  EXPECT_NE(nsec3_hash(Name::of("a.test"), salt, 0),
            nsec3_hash(Name::of("a.test"), salt, 1));
}

TEST(Nsec3, OwnerNameIsBase32UnderZone) {
  const auto owner = nsec3_owner(Name::of("www.example.com"),
                                 Name::of("example.com"), {}, 0);
  EXPECT_TRUE(owner.is_subdomain_of(Name::of("example.com")));
  EXPECT_EQ(owner.label_count(), 3u);
  EXPECT_EQ(owner.labels().front().size(), 32u);  // 20 bytes in base32
}

TEST(Nsec3, CoverSemantics) {
  const ede::crypto::Bytes low(20, 0x10);
  const ede::crypto::Bytes mid(20, 0x50);
  const ede::crypto::Bytes high(20, 0x90);
  EXPECT_TRUE(nsec3_covers(low, high, mid));
  EXPECT_FALSE(nsec3_covers(low, mid, high));
  EXPECT_FALSE(nsec3_covers(low, high, low));   // owner itself not covered
  EXPECT_FALSE(nsec3_covers(low, high, high));  // next not covered
}

TEST(Nsec3, CoverWrapsAroundTheRing) {
  const ede::crypto::Bytes low(20, 0x10);
  const ede::crypto::Bytes high(20, 0x90);
  const ede::crypto::Bytes higher(20, 0xf0);
  // Last record: owner=high, next=low; covers everything > high and < low.
  EXPECT_TRUE(nsec3_covers(high, low, higher));
  EXPECT_TRUE(nsec3_covers(high, low, ede::crypto::Bytes(20, 0x01)));
  EXPECT_FALSE(nsec3_covers(high, low, ede::crypto::Bytes(20, 0x50)));
}

RRset sample_rrset(const Name& owner) {
  return RRset{owner, RRType::A, ede::dns::RRClass::IN, 3600,
               {ede::dns::ARdata{*ede::dns::Ipv4Address::parse("192.0.2.1")},
                ede::dns::ARdata{*ede::dns::Ipv4Address::parse("192.0.2.2")}}};
}

TEST(Signing, SignAndVerifyRoundTrip) {
  const Name zone = Name::of("example.com");
  const auto zsk = make_zsk(zone, 8);
  const auto rrset = sample_rrset(zone);
  const auto sig = sign_rrset(rrset, zsk, zone, {1000, 2000});

  EXPECT_EQ(sig.type_covered, RRType::A);
  EXPECT_EQ(sig.algorithm, 8);
  EXPECT_EQ(sig.labels, 2);
  EXPECT_EQ(sig.key_tag, zsk.tag());
  EXPECT_EQ(sig.signature.size(), algorithm_info(8).signature_size);
  EXPECT_TRUE(verify_rrset(rrset, sig, zsk.dnskey));
}

TEST(Signing, VerificationFailsUnderWrongKey) {
  const Name zone = Name::of("example.com");
  const auto zsk = make_zsk(zone, 8);
  const auto other = make_zsk(Name::of("other.com"), 8);
  const auto rrset = sample_rrset(zone);
  const auto sig = sign_rrset(rrset, zsk, zone, {1000, 2000});
  EXPECT_FALSE(verify_rrset(rrset, sig, other.dnskey));
}

TEST(Signing, VerificationFailsOnModifiedRrset) {
  const Name zone = Name::of("example.com");
  const auto zsk = make_zsk(zone, 8);
  auto rrset = sample_rrset(zone);
  const auto sig = sign_rrset(rrset, zsk, zone, {1000, 2000});
  rrset.rdatas.pop_back();
  EXPECT_FALSE(verify_rrset(rrset, sig, zsk.dnskey));
}

TEST(Signing, VerificationFailsOnModifiedTimes) {
  const Name zone = Name::of("example.com");
  const auto zsk = make_zsk(zone, 8);
  const auto rrset = sample_rrset(zone);
  auto sig = sign_rrset(rrset, zsk, zone, {1000, 2000});
  sig.expiration += 1;  // times are covered by the signature
  EXPECT_FALSE(verify_rrset(rrset, sig, zsk.dnskey));
}

TEST(Signing, RdataOrderDoesNotMatter) {
  // Canonical RRset form sorts rdata, so permuted RRsets verify equal.
  const Name zone = Name::of("example.com");
  const auto zsk = make_zsk(zone, 8);
  auto rrset = sample_rrset(zone);
  const auto sig = sign_rrset(rrset, zsk, zone, {1000, 2000});
  std::swap(rrset.rdatas[0], rrset.rdatas[1]);
  EXPECT_TRUE(verify_rrset(rrset, sig, zsk.dnskey));
}

TEST(Signing, OwnerCaseDoesNotMatter) {
  const Name zone = Name::of("example.com");
  const auto zsk = make_zsk(zone, 8);
  auto rrset = sample_rrset(Name::of("ExAmPlE.CoM"));
  const auto sig = sign_rrset(rrset, zsk, zone, {1000, 2000});
  rrset.name = Name::of("example.com");
  EXPECT_TRUE(verify_rrset(rrset, sig, zsk.dnskey));
}

TEST(Temporal, Classification) {
  ede::dns::RrsigRdata sig;
  sig.inception = 1000;
  sig.expiration = 2000;
  EXPECT_EQ(classify_temporal(sig, 1500), SigTemporal::Valid);
  EXPECT_EQ(classify_temporal(sig, 1000), SigTemporal::Valid);
  EXPECT_EQ(classify_temporal(sig, 2000), SigTemporal::Valid);
  EXPECT_EQ(classify_temporal(sig, 999), SigTemporal::NotYetValid);
  EXPECT_EQ(classify_temporal(sig, 2001), SigTemporal::Expired);
  sig.inception = 3000;
  EXPECT_EQ(classify_temporal(sig, 1500), SigTemporal::ExpiredBeforeValid);
}

}  // namespace
