// UDP truncation and DoTCP fallback: the server's honest TC-bit behaviour
// (respecting the client's advertised EDNS buffer, shedding whole records
// so the counts always match the sections) and the resolver's genuine
// stream retry — including what happens when the stream side refuses or
// dies and the failure must surface as SERVFAIL with EDE 22/23.
#include <gtest/gtest.h>

#include <algorithm>

#include "edns/edns.hpp"
#include "resolver/resolver.hpp"
#include "server/auth_server.hpp"
#include "simnet/stream.hpp"
#include "zone/signer.hpp"

namespace {

using namespace ede;
using dns::Name;
using dns::RRType;

/// A zone whose TXT answer (with signatures) far exceeds 512 bytes.
std::shared_ptr<zone::Zone> big_zone(const zone::ZoneKeys& keys) {
  auto zone = std::make_shared<zone::Zone>(Name::of("big.test"));
  dns::SoaRdata soa;
  soa.mname = Name::of("ns1.big.test");
  soa.rname = Name::of("hostmaster.big.test");
  soa.minimum = 300;
  zone->add(zone->origin(), RRType::SOA, soa);
  zone->add(zone->origin(), RRType::NS, dns::NsRdata{Name::of("ns1.big.test")});
  zone->add(Name::of("ns1.big.test"), RRType::A,
            dns::ARdata{*dns::Ipv4Address::parse("93.184.223.1")});
  dns::TxtRdata txt;
  for (int i = 0; i < 8; ++i) txt.strings.push_back(std::string(200, 'x'));
  zone->add(zone->origin(), RRType::TXT, txt);
  zone->add(zone->origin(), RRType::A,
            dns::ARdata{*dns::Ipv4Address::parse("93.184.223.9")});
  zone::sign_zone(*const_cast<zone::Zone*>(zone.get()), keys, {});
  return zone;
}

class Truncation : public ::testing::Test {
 protected:
  Truncation() : keys_(zone::make_zone_keys(Name::of("big.test"))) {
    config_.udp_payload_size = 4'096;  // generous server-side cap
    server_ = std::make_unique<server::AuthServer>(config_);
    server_->add_zone(big_zone(keys_));
  }

  dns::Message ask(std::uint16_t payload_size) {
    dns::Message query = dns::make_query(1, Name::of("big.test"), RRType::TXT);
    edns::Edns e;
    e.dnssec_ok = true;
    e.udp_payload_size = payload_size;
    edns::set_edns(query, e);
    return server_->handle(
        query, sim::PacketContext{sim::NodeAddress::of("192.0.2.9")});
  }

  zone::ZoneKeys keys_;
  server::ServerConfig config_;
  std::unique_ptr<server::AuthServer> server_;
};

TEST_F(Truncation, SmallAdvertisementGetsTcBit) {
  const auto response = ask(512);
  EXPECT_TRUE(response.header.tc);
  EXPECT_TRUE(response.answer.empty());
  EXPECT_LE(response.serialize().size(), 512u);
  // The OPT record survives so the client knows EDNS worked.
  EXPECT_NE(response.find_opt(), nullptr);
}

TEST_F(Truncation, LargeAdvertisementGetsTheFullAnswer) {
  const auto response = ask(4'096);
  EXPECT_FALSE(response.header.tc);
  EXPECT_FALSE(response.answer.empty());
  EXPECT_GT(response.serialize().size(), 512u);
}

TEST_F(Truncation, ClientAdvertisementWinsOverServerCap) {
  // The server could send 4096 bytes but the client only advertised 1232:
  // the client's number governs, so the ~2 KB answer truncates.
  const auto response = ask(1'232);
  EXPECT_TRUE(response.header.tc);
  EXPECT_LE(response.serialize().size(), 1'232u);
}

TEST_F(Truncation, NonEdnsQueryIsLimitedTo512) {
  dns::Message query = dns::make_query(1, Name::of("big.test"), RRType::TXT);
  const auto response = server_->handle(
      query, sim::PacketContext{sim::NodeAddress::of("192.0.2.9")});
  EXPECT_TRUE(response.header.tc);
  EXPECT_LE(response.serialize().size(), 512u);
}

TEST_F(Truncation, TruncatedResponseIsWellFormed) {
  // Whatever is shed, the message must stay parseable and the section
  // counts must agree with the records actually present: whole RRs are
  // dropped, never trailing bytes.
  for (const std::uint16_t payload :
       {std::uint16_t{512}, std::uint16_t{700}, std::uint16_t{1'000},
        std::uint16_t{1'232}, std::uint16_t{2'000}}) {
    const auto response = ask(payload);
    const auto wire = response.serialize();
    EXPECT_LE(wire.size(), payload) << "advertised " << payload;
    const auto reparsed = dns::Message::parse(wire);
    ASSERT_TRUE(reparsed.ok()) << "advertised " << payload;
    EXPECT_EQ(reparsed.value().answer.size(), response.answer.size());
    EXPECT_EQ(reparsed.value().authority.size(), response.authority.size());
    EXPECT_EQ(reparsed.value().additional.size(),
              response.additional.size());
  }
}

TEST_F(Truncation, StreamQueriesAreNeverTruncated) {
  dns::Message query = dns::make_query(1, Name::of("big.test"), RRType::TXT);
  edns::Edns e;
  e.dnssec_ok = true;
  e.udp_payload_size = 512;  // tiny advertisement — irrelevant over TCP
  edns::set_edns(query, e);
  const auto response =
      server_->handle(query, sim::PacketContext{sim::NodeAddress::of("192.0.2.9")},
                      /*over_stream=*/true);
  EXPECT_FALSE(response.header.tc);
  EXPECT_FALSE(response.answer.empty());
  EXPECT_GT(response.serialize().size(), 512u);
}

// --- the resolver's genuine DoTCP fallback ----------------------------

struct FallbackWorld {
  FallbackWorld() {
    clock = std::make_shared<sim::Clock>();
    network = std::make_shared<sim::Network>(clock);

    child_keys = zone::make_zone_keys(Name::of("big.test"));
    server::ServerConfig config;
    config.udp_payload_size = 512;  // a stingy authority
    child_server = std::make_shared<server::AuthServer>(config);
    child_server->add_zone(big_zone(child_keys));
    network->attach(child_addr, child_server->endpoint());
    network->stream().listen(child_addr, child_server->stream_endpoint());

    auto root = std::make_shared<zone::Zone>(Name{});
    dns::SoaRdata soa;
    soa.mname = Name::of("a.root-servers.net");
    soa.rname = Name{};
    root->add(Name{}, RRType::SOA, soa);
    root->add(Name{}, RRType::NS,
              dns::NsRdata{Name::of("a.root-servers.net")});
    root->add(Name::of("a.root-servers.net"), RRType::A,
              dns::ARdata{*dns::Ipv4Address::parse("198.41.0.4")});
    root->add(Name::of("big.test"), RRType::NS,
              dns::NsRdata{Name::of("ns1.big.test")});
    root->add(Name::of("ns1.big.test"), RRType::A,
              dns::ARdata{*dns::Ipv4Address::parse("93.184.223.1")});
    for (const auto& ds : zone::ds_records(Name::of("big.test"), child_keys)) {
      root->add(Name::of("big.test"), RRType::DS, ds);
    }
    root_keys = zone::make_zone_keys(Name{});
    zone::sign_zone(*root, root_keys, {});
    root_server = std::make_shared<server::AuthServer>();
    root_server->add_zone(root);
    network->attach(root_addr, root_server->endpoint());
    network->stream().listen(root_addr, root_server->stream_endpoint());
  }

  resolver::RecursiveResolver make_resolver() {
    return resolver::RecursiveResolver(network, resolver::profile_cloudflare(),
                                       {root_addr}, root_keys.ksk.dnskey, {});
  }

  std::shared_ptr<sim::Clock> clock;
  std::shared_ptr<sim::Network> network;
  sim::NodeAddress child_addr = sim::NodeAddress::of("93.184.223.1");
  sim::NodeAddress root_addr = sim::NodeAddress::of("198.41.0.4");
  zone::ZoneKeys child_keys;
  zone::ZoneKeys root_keys;
  std::shared_ptr<server::AuthServer> child_server;
  std::shared_ptr<server::AuthServer> root_server;
};

TEST(TruncationResolver, FallsBackOverTheStreamAndGetsTheAnswer) {
  FallbackWorld w;
  auto resolver = w.make_resolver();

  // The big TXT answer truncates at 512 and must arrive via a real
  // stream exchange, not a bigger UDP advertisement.
  const auto outcome = resolver.resolve(Name::of("big.test"), RRType::TXT);
  EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR);
  EXPECT_EQ(outcome.security, dnssec::Security::Secure);
  bool has_txt = false;
  for (const auto& rr : outcome.response.answer)
    has_txt |= rr.type == RRType::TXT;
  EXPECT_TRUE(has_txt);

  const auto& h = resolver.hardening_stats();
  EXPECT_GE(h.tc_seen, 1u);
  EXPECT_GE(h.tcp_fallbacks, 1u);
  EXPECT_GE(h.tcp_success, 1u);
  EXPECT_GE(w.network->stream().stats().frames_delivered, 1u);
}

TEST(TruncationResolver, RefusedStreamDegradesToServfailWithEde) {
  FallbackWorld w;
  w.network->stream().set_behaviors(w.child_addr,
                                    {sim::StreamBehavior::refuse()});
  auto resolver = w.make_resolver();

  const auto outcome = resolver.resolve(Name::of("big.test"), RRType::TXT);
  EXPECT_EQ(outcome.rcode, dns::RCode::SERVFAIL);
  std::vector<std::uint16_t> codes;
  for (const auto& error : outcome.errors)
    codes.push_back(static_cast<std::uint16_t>(error.code));
  EXPECT_TRUE(std::find(codes.begin(), codes.end(), 22) != codes.end() ||
              std::find(codes.begin(), codes.end(), 23) != codes.end())
      << "a failed DoTCP fallback must surface EDE 22 or 23";
  EXPECT_GE(resolver.hardening_stats().tcp_connect_failures, 1u);
  EXPECT_EQ(resolver.hardening_stats().tcp_success, 0u);
}

TEST(TruncationResolver, MidStreamCloseDegradesToServfailWithEde) {
  FallbackWorld w;
  w.network->stream().set_behaviors(w.child_addr,
                                    {sim::StreamBehavior::mid_close()});
  auto resolver = w.make_resolver();

  const auto outcome = resolver.resolve(Name::of("big.test"), RRType::TXT);
  EXPECT_EQ(outcome.rcode, dns::RCode::SERVFAIL);
  std::vector<std::uint16_t> codes;
  for (const auto& error : outcome.errors)
    codes.push_back(static_cast<std::uint16_t>(error.code));
  EXPECT_TRUE(std::find(codes.begin(), codes.end(), 23) != codes.end())
      << "a stream that dies mid-answer must surface EDE 23";
  EXPECT_GE(resolver.hardening_stats().tcp_stream_failures, 1u);
}

}  // namespace
