// UDP truncation tests: the server's TC-bit behaviour and the resolver's
// TCP-fallback retry (modelled as a maximum-size EDNS advertisement).
#include <gtest/gtest.h>

#include "edns/edns.hpp"
#include "resolver/resolver.hpp"
#include "server/auth_server.hpp"
#include "zone/signer.hpp"

namespace {

using namespace ede;
using dns::Name;
using dns::RRType;

/// A zone whose TXT answer (with signatures) far exceeds 512 bytes.
std::shared_ptr<zone::Zone> big_zone(const zone::ZoneKeys& keys) {
  auto zone = std::make_shared<zone::Zone>(Name::of("big.test"));
  dns::SoaRdata soa;
  soa.mname = Name::of("ns1.big.test");
  soa.rname = Name::of("hostmaster.big.test");
  soa.minimum = 300;
  zone->add(zone->origin(), RRType::SOA, soa);
  zone->add(zone->origin(), RRType::NS, dns::NsRdata{Name::of("ns1.big.test")});
  zone->add(Name::of("ns1.big.test"), RRType::A,
            dns::ARdata{*dns::Ipv4Address::parse("93.184.223.1")});
  dns::TxtRdata txt;
  for (int i = 0; i < 8; ++i) txt.strings.push_back(std::string(200, 'x'));
  zone->add(zone->origin(), RRType::TXT, txt);
  zone->add(zone->origin(), RRType::A,
            dns::ARdata{*dns::Ipv4Address::parse("93.184.223.9")});
  zone::sign_zone(*const_cast<zone::Zone*>(zone.get()), keys, {});
  return zone;
}

class Truncation : public ::testing::Test {
 protected:
  Truncation() : keys_(zone::make_zone_keys(Name::of("big.test"))) {
    server_.add_zone(big_zone(keys_));
  }

  dns::Message ask(std::uint16_t payload_size) {
    dns::Message query = dns::make_query(1, Name::of("big.test"), RRType::TXT);
    edns::Edns e;
    e.dnssec_ok = true;
    e.udp_payload_size = payload_size;
    edns::set_edns(query, e);
    return server_.handle(
        query, sim::PacketContext{sim::NodeAddress::of("192.0.2.9")});
  }

  zone::ZoneKeys keys_;
  server::AuthServer server_;
};

TEST_F(Truncation, SmallAdvertisementGetsTcBit) {
  const auto response = ask(512);
  EXPECT_TRUE(response.header.tc);
  EXPECT_TRUE(response.answer.empty());
  EXPECT_LE(response.serialize().size(), 512u);
  // The OPT record survives so the client knows EDNS worked.
  EXPECT_NE(response.find_opt(), nullptr);
}

TEST_F(Truncation, LargeAdvertisementGetsTheFullAnswer) {
  const auto response = ask(0xffff);
  EXPECT_FALSE(response.header.tc);
  EXPECT_FALSE(response.answer.empty());
  EXPECT_GT(response.serialize().size(), 512u);
}

TEST_F(Truncation, NonEdnsQueryIsLimitedTo512) {
  dns::Message query = dns::make_query(1, Name::of("big.test"), RRType::TXT);
  const auto response = server_.handle(
      query, sim::PacketContext{sim::NodeAddress::of("192.0.2.9")});
  EXPECT_TRUE(response.header.tc);
}

TEST(TruncationResolver, RetriesAndGetsTheAnswer) {
  auto clock = std::make_shared<sim::Clock>();
  auto network = std::make_shared<sim::Network>(clock);

  const auto child_keys = zone::make_zone_keys(Name::of("big.test"));
  server::ServerConfig config;
  config.udp_payload_size = 512;  // a stingy authority
  auto child_server = std::make_shared<server::AuthServer>(config);
  child_server->add_zone(big_zone(child_keys));
  network->attach(sim::NodeAddress::of("93.184.223.1"),
                  child_server->endpoint());

  auto root = std::make_shared<zone::Zone>(Name{});
  dns::SoaRdata soa;
  soa.mname = Name::of("a.root-servers.net");
  soa.rname = Name{};
  root->add(Name{}, RRType::SOA, soa);
  root->add(Name{}, RRType::NS, dns::NsRdata{Name::of("a.root-servers.net")});
  root->add(Name::of("a.root-servers.net"), RRType::A,
            dns::ARdata{*dns::Ipv4Address::parse("198.41.0.4")});
  root->add(Name::of("big.test"), RRType::NS,
            dns::NsRdata{Name::of("ns1.big.test")});
  root->add(Name::of("ns1.big.test"), RRType::A,
            dns::ARdata{*dns::Ipv4Address::parse("93.184.223.1")});
  for (const auto& ds : zone::ds_records(Name::of("big.test"), child_keys)) {
    root->add(Name::of("big.test"), RRType::DS, ds);
  }
  const auto root_keys = zone::make_zone_keys(Name{});
  zone::sign_zone(*root, root_keys, {});
  auto root_server = std::make_shared<server::AuthServer>();
  root_server->add_zone(root);
  network->attach(sim::NodeAddress::of("198.41.0.4"),
                  root_server->endpoint());

  resolver::RecursiveResolver resolver(
      network, resolver::profile_cloudflare(),
      {sim::NodeAddress::of("198.41.0.4")}, root_keys.ksk.dnskey, {});

  // The big TXT answer truncates at 512 and must arrive via the retry.
  const auto outcome = resolver.resolve(Name::of("big.test"), RRType::TXT);
  EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR);
  EXPECT_EQ(outcome.security, dnssec::Security::Secure);
  bool has_txt = false;
  for (const auto& rr : outcome.response.answer)
    has_txt |= rr.type == RRType::TXT;
  EXPECT_TRUE(has_txt);
}

}  // namespace
