// THE integration test: the full testbed resolved through all seven
// vendor profiles must reproduce the paper's Table 4 cell-for-cell, plus
// the §3.3 aggregate claims. One parameterized test per testbed subdomain.
#include <gtest/gtest.h>

#include <set>

#include "edns/ede.hpp"
#include "resolver/resolver.hpp"
#include "testbed/expected.hpp"
#include "testbed/testbed.hpp"

namespace {

using ede::resolver::RecursiveResolver;
using ede::testbed::Testbed;

/// Shared fixture state: building the testbed once keeps the suite fast.
struct World {
  World()
      : network(std::make_shared<ede::sim::Network>(
            std::make_shared<ede::sim::Clock>())),
        testbed(network) {
    for (const auto& profile : ede::resolver::all_profiles()) {
      resolvers.push_back(testbed.make_resolver(profile));
    }
  }

  std::shared_ptr<ede::sim::Network> network;
  Testbed testbed;
  std::vector<RecursiveResolver> resolvers;
};

World& world() {
  static World instance;
  return instance;
}

std::vector<std::uint16_t> sorted_codes(const ede::resolver::Outcome& o) {
  std::vector<std::uint16_t> codes;
  for (const auto& error : o.errors)
    codes.push_back(static_cast<std::uint16_t>(error.code));
  std::sort(codes.begin(), codes.end());
  codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
  return codes;
}

class Table4Row : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Table4Row, MatchesThePublishedMatrix) {
  auto& w = world();
  const std::size_t row = GetParam();
  const auto& spec = w.testbed.cases()[row];
  const auto& expected = ede::testbed::expected_table4()[row];
  ASSERT_EQ(expected.label, spec.label) << "row tables out of sync";

  const auto qname = w.testbed.query_name(spec);
  for (std::size_t p = 0; p < w.resolvers.size(); ++p) {
    // Flush per query so row order cannot influence results through caches.
    w.resolvers[p].flush();
    const auto outcome = w.resolvers[p].resolve(qname, ede::dns::RRType::A);
    EXPECT_EQ(sorted_codes(outcome), expected.codes[p])
        << spec.label << " via " << w.resolvers[p].profile().name;
  }
}

std::string row_name(const ::testing::TestParamInfo<std::size_t>& info) {
  std::string label = ede::testbed::expected_table4()[info.param].label;
  for (char& c : label) {
    if (c == '-') c = '_';
  }
  return std::to_string(info.param + 1) + "_" + label;
}

INSTANTIATE_TEST_SUITE_P(AllSixtyThree, Table4Row, ::testing::Range<std::size_t>(0, 63),
                         row_name);

TEST(Table4Aggregates, PaperHeadlineNumbers) {
  auto& w = world();
  int consistent = 0;
  std::set<std::uint16_t> unique_codes;
  std::vector<int> specificity(w.resolvers.size(), 0);

  for (const auto& spec : w.testbed.cases()) {
    const auto qname = w.testbed.query_name(spec);
    std::vector<std::vector<std::uint16_t>> rows;
    for (auto& resolver : w.resolvers) {
      resolver.flush();
      rows.push_back(sorted_codes(resolver.resolve(qname, ede::dns::RRType::A)));
    }
    for (std::size_t p = 0; p < rows.size(); ++p) {
      for (const auto code : rows[p]) unique_codes.insert(code);
      if (!rows[p].empty()) specificity[p] += 1;
    }
    if (std::all_of(rows.begin(), rows.end(),
                    [&](const auto& r) { return r == rows[0]; })) {
      ++consistent;
    }
  }

  // §3.3: "Only 4 test cases out of 63 triggered the same results across
  // all the seven tested systems" — 94 % disagreement.
  EXPECT_EQ(consistent, 4);
  // §3.3: "Our test cases triggered 12 unique INFO-CODEs."
  EXPECT_EQ(unique_codes.size(), 12u);
  // §3.3: "The Cloudflare implementation provides the richest feedback."
  const auto most = static_cast<std::size_t>(std::distance(
      specificity.begin(),
      std::max_element(specificity.begin(), specificity.end())));
  EXPECT_EQ(w.resolvers[most].profile().vendor,
            ede::resolver::Vendor::Cloudflare);
  // BIND returned no EDE for any testbed case.
  EXPECT_EQ(specificity[0], 0);
}

TEST(Table4Aggregates, ConsistentCasesAreTheExpectedFour) {
  auto& w = world();
  std::vector<std::string> consistent;
  for (const auto& spec : w.testbed.cases()) {
    const auto qname = w.testbed.query_name(spec);
    std::vector<std::vector<std::uint16_t>> rows;
    for (auto& resolver : w.resolvers) {
      resolver.flush();
      rows.push_back(sorted_codes(resolver.resolve(qname, ede::dns::RRType::A)));
    }
    if (std::all_of(rows.begin(), rows.end(),
                    [&](const auto& r) { return r == rows[0]; })) {
      consistent.push_back(spec.label);
    }
  }
  // §3.3 names them: no-ds, nsec3-iter-200, unsigned, valid.
  EXPECT_EQ(consistent, (std::vector<std::string>{
                            "valid", "no-ds", "nsec3-iter-200", "unsigned"}));
}

TEST(Table4Rcodes, BogusCasesServfailAndInsecureCasesResolve) {
  auto& w = world();
  auto cloudflare = w.testbed.make_resolver(ede::resolver::profile_cloudflare());

  // The control case resolves securely (AD bit).
  auto valid = cloudflare.resolve(
      w.testbed.query_name(w.testbed.cases()[0]), ede::dns::RRType::A);
  EXPECT_EQ(valid.rcode, ede::dns::RCode::NOERROR);
  EXPECT_EQ(valid.security, ede::dnssec::Security::Secure);
  EXPECT_TRUE(valid.response.header.ad);

  // A bogus case SERVFAILs.
  const auto& bogus_spec = w.testbed.cases()[8];  // rrsig-exp-all
  ASSERT_EQ(bogus_spec.label, "rrsig-exp-all");
  auto bogus = cloudflare.resolve(w.testbed.query_name(bogus_spec),
                                  ede::dns::RRType::A);
  EXPECT_EQ(bogus.rcode, ede::dns::RCode::SERVFAIL);
  EXPECT_EQ(bogus.security, ede::dnssec::Security::Bogus);

  // An unsupported-algorithm case is treated insecure: NOERROR, no AD.
  auto insecure = cloudflare.resolve(
      ede::dns::Name::of("ed448.extended-dns-errors.com"),
      ede::dns::RRType::A);
  EXPECT_EQ(insecure.rcode, ede::dns::RCode::NOERROR);
  EXPECT_EQ(insecure.security, ede::dnssec::Security::Insecure);
  EXPECT_FALSE(insecure.response.header.ad);
}

TEST(Table4ExtraText, CloudflareNetworkErrorNamesTheServer) {
  auto& w = world();
  auto cloudflare = w.testbed.make_resolver(ede::resolver::profile_cloudflare());
  const auto outcome = cloudflare.resolve(
      ede::dns::Name::of("allow-query-none.extended-dns-errors.com"),
      ede::dns::RRType::A);
  bool found = false;
  for (const auto& error : outcome.errors) {
    if (error.code == ede::edns::EdeCode::NetworkError) {
      EXPECT_NE(error.extra_text.find("rcode=REFUSED"), std::string::npos);
      EXPECT_NE(error.extra_text.find(":53"), std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Table4ExtraText, KnotUsesItsFixedUnsupportedText) {
  auto& w = world();
  auto knot = w.testbed.make_resolver(ede::resolver::profile_knot());
  const auto outcome = knot.resolve(
      ede::dns::Name::of("rsamd5.extended-dns-errors.com"),
      ede::dns::RRType::A);
  ASSERT_EQ(outcome.errors.size(), 1u);
  EXPECT_EQ(outcome.errors.front().code, ede::edns::EdeCode::Other);
  EXPECT_EQ(outcome.errors.front().extra_text, "LSLC: unsupported digest/key");
}

}  // namespace
