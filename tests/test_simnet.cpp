// Simulated-network tests: routing, the special-purpose reachability
// model, fault injection and statistics.
#include <gtest/gtest.h>

#include "simnet/network.hpp"

namespace {

using namespace ede::sim;
using ede::crypto::Bytes;
using ede::crypto::BytesView;

Endpoint echo_endpoint() {
  return [](BytesView data, const PacketContext&) {
    return std::optional<Bytes>(Bytes(data.begin(), data.end()));
  };
}

class NetworkTest : public ::testing::Test {
 protected:
  std::shared_ptr<Clock> clock_ = std::make_shared<Clock>();
  Network net_{clock_};
  NodeAddress src_ = NodeAddress::of("192.0.2.100");
  Bytes payload_ = {1, 2, 3};
};

TEST_F(NetworkTest, DeliversToAttachedEndpoint) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  const auto result = net_.send(src_, dst, payload_);
  EXPECT_EQ(result.status, SendStatus::Delivered);
  EXPECT_EQ(result.response, payload_);
}

TEST_F(NetworkTest, UnattachedRoutableAddressTimesOut) {
  const auto result =
      net_.send(src_, NodeAddress::of("93.184.216.35"), payload_);
  EXPECT_EQ(result.status, SendStatus::Timeout);
}

TEST_F(NetworkTest, SpecialPurposeAddressesAreUnreachable) {
  for (const char* addr : {"10.0.0.1", "192.168.1.1", "127.0.0.1",
                           "192.0.2.1", "169.254.0.1", "0.0.0.0",
                           "240.0.0.1", "224.0.0.1"}) {
    const auto dst = NodeAddress::of(addr);
    // Even an attached endpoint is unreachable if the address is special.
    net_.attach(dst, echo_endpoint());
    EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Unreachable)
        << addr;
  }
  for (const char* addr :
       {"::1", "fe80::1", "2001:db8::1", "ff02::1", "::ffff:192.0.2.1",
        "64:ff9b::1", "fd00::1", "::"}) {
    EXPECT_EQ(net_.send(src_, NodeAddress::of(addr), payload_).status,
              SendStatus::Unreachable)
        << addr;
  }
}

TEST_F(NetworkTest, GlobalV6IsRoutable) {
  const auto dst = NodeAddress::of("2606:4700::1111");
  net_.attach(dst, echo_endpoint());
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Delivered);
}

TEST_F(NetworkTest, EndpointSeesSourceAddress) {
  const auto dst = NodeAddress::of("93.184.216.34");
  NodeAddress seen;
  net_.attach(dst, [&](BytesView, const PacketContext& ctx) {
    seen = ctx.source;
    return std::optional<Bytes>(Bytes{});
  });
  (void)net_.send(src_, dst, payload_);
  EXPECT_EQ(seen, src_);
}

TEST_F(NetworkTest, SilentDropBecomesTimeout) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, [](BytesView, const PacketContext&) {
    return std::optional<Bytes>{};
  });
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Timeout);
}

TEST_F(NetworkTest, TimeoutFaultSwallowsPackets) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  net_.inject_fault(dst, Fault::Timeout);
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Timeout);
  net_.inject_fault(dst, Fault::None);
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Delivered);
}

TEST_F(NetworkTest, IntermittentFaultDropsEveryOtherPacket) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  net_.inject_fault(dst, Fault::Intermittent);
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Timeout);
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Delivered);
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Timeout);
}

TEST_F(NetworkTest, DetachRemovesEndpoint) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  EXPECT_TRUE(net_.attached(dst));
  net_.detach(dst);
  EXPECT_FALSE(net_.attached(dst));
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Timeout);
}

TEST_F(NetworkTest, StatsCountOutcomes) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  (void)net_.send(src_, dst, payload_);
  (void)net_.send(src_, NodeAddress::of("10.0.0.1"), payload_);
  (void)net_.send(src_, NodeAddress::of("93.184.216.99"), payload_);
  const auto& stats = net_.stats();
  EXPECT_EQ(stats.packets_sent, 3u);
  EXPECT_EQ(stats.packets_delivered, 1u);
  EXPECT_EQ(stats.packets_unreachable, 1u);
  EXPECT_EQ(stats.packets_timeout, 1u);
}

TEST(ClockTest, AdvanceAndSet) {
  Clock clock(1000);
  EXPECT_EQ(clock.now(), 1000u);
  clock.advance(500);
  EXPECT_EQ(clock.now(), 1500u);
  clock.set(42);
  EXPECT_EQ(clock.now(), 42u);
}

TEST(NodeAddressTest, ParseBothFamilies) {
  EXPECT_TRUE(NodeAddress::of("1.2.3.4").is_v4());
  EXPECT_FALSE(NodeAddress::of("2001:db8::1").is_v4());
  EXPECT_THROW((void)NodeAddress::of("not-an-address"), std::invalid_argument);
}

TEST(NodeAddressTest, LoopbackDetection) {
  EXPECT_TRUE(NodeAddress::of("127.0.0.1").is_loopback());
  EXPECT_TRUE(NodeAddress::of("::1").is_loopback());
  EXPECT_FALSE(NodeAddress::of("8.8.8.8").is_loopback());
}

}  // namespace
