// Simulated-network tests: routing, the special-purpose reachability
// model, fault injection and statistics.
#include <gtest/gtest.h>

#include "simnet/network.hpp"

namespace {

using namespace ede::sim;
using ede::crypto::Bytes;
using ede::crypto::BytesView;

Endpoint echo_endpoint() {
  return [](BytesView data, const PacketContext&) {
    return std::optional<Bytes>(Bytes(data.begin(), data.end()));
  };
}

class NetworkTest : public ::testing::Test {
 protected:
  std::shared_ptr<Clock> clock_ = std::make_shared<Clock>();
  Network net_{clock_};
  NodeAddress src_ = NodeAddress::of("192.0.2.100");
  Bytes payload_ = {1, 2, 3};
};

TEST_F(NetworkTest, DeliversToAttachedEndpoint) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  const auto result = net_.send(src_, dst, payload_);
  EXPECT_EQ(result.status, SendStatus::Delivered);
  EXPECT_EQ(result.response, payload_);
}

TEST_F(NetworkTest, UnattachedRoutableAddressTimesOut) {
  const auto result =
      net_.send(src_, NodeAddress::of("93.184.216.35"), payload_);
  EXPECT_EQ(result.status, SendStatus::Timeout);
}

TEST_F(NetworkTest, SpecialPurposeAddressesAreUnreachable) {
  for (const char* addr : {"10.0.0.1", "192.168.1.1", "127.0.0.1",
                           "192.0.2.1", "169.254.0.1", "0.0.0.0",
                           "240.0.0.1", "224.0.0.1"}) {
    const auto dst = NodeAddress::of(addr);
    // Even an attached endpoint is unreachable if the address is special.
    net_.attach(dst, echo_endpoint());
    EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Unreachable)
        << addr;
  }
  for (const char* addr :
       {"::1", "fe80::1", "2001:db8::1", "ff02::1", "::ffff:192.0.2.1",
        "64:ff9b::1", "fd00::1", "::"}) {
    EXPECT_EQ(net_.send(src_, NodeAddress::of(addr), payload_).status,
              SendStatus::Unreachable)
        << addr;
  }
}

TEST_F(NetworkTest, GlobalV6IsRoutable) {
  const auto dst = NodeAddress::of("2606:4700::1111");
  net_.attach(dst, echo_endpoint());
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Delivered);
}

TEST_F(NetworkTest, EndpointSeesSourceAddress) {
  const auto dst = NodeAddress::of("93.184.216.34");
  NodeAddress seen;
  net_.attach(dst, [&](BytesView, const PacketContext& ctx) {
    seen = ctx.source;
    return std::optional<Bytes>(Bytes{});
  });
  (void)net_.send(src_, dst, payload_);
  EXPECT_EQ(seen, src_);
}

TEST_F(NetworkTest, SilentDropBecomesTimeout) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, [](BytesView, const PacketContext&) {
    return std::optional<Bytes>{};
  });
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Timeout);
}

TEST_F(NetworkTest, TimeoutFaultSwallowsPackets) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  net_.inject_fault(dst, Fault::timeout());
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Timeout);
  net_.inject_fault(dst, Fault::none());
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Delivered);
}

TEST_F(NetworkTest, IntermittentFaultDropsEveryOtherPacket) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  net_.inject_fault(dst, Fault::intermittent());
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Timeout);
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Delivered);
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Timeout);
}

TEST_F(NetworkTest, DetachRemovesEndpoint) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  EXPECT_TRUE(net_.attached(dst));
  net_.detach(dst);
  EXPECT_FALSE(net_.attached(dst));
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Timeout);
}

TEST_F(NetworkTest, StatsCountOutcomes) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  (void)net_.send(src_, dst, payload_);
  (void)net_.send(src_, NodeAddress::of("10.0.0.1"), payload_);
  (void)net_.send(src_, NodeAddress::of("93.184.216.99"), payload_);
  const auto& stats = net_.stats();
  EXPECT_EQ(stats.packets_sent, 3u);
  EXPECT_EQ(stats.packets_delivered, 1u);
  EXPECT_EQ(stats.packets_unreachable, 1u);
  EXPECT_EQ(stats.packets_timeout, 1u);
}

TEST_F(NetworkTest, ReinjectedIntermittentFaultStartsFresh) {
  // Regression: clearing a fault used to leave the parity counter behind,
  // so a later Intermittent fault resumed at the old parity.
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  net_.inject_fault(dst, Fault::intermittent());
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Timeout);
  net_.inject_fault(dst, Fault::none());
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Delivered);
  net_.inject_fault(dst, Fault::intermittent());
  // A fresh Intermittent fault drops its first packet again.
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Timeout);
}

TEST_F(NetworkTest, LossFaultExtremesAreDeterministic) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  net_.inject_fault(dst, Fault::loss(1.0));
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Timeout);
  net_.inject_fault(dst, Fault::loss(0.0));
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Delivered);
}

TEST_F(NetworkTest, LossFaultDropsRoughlyTheConfiguredFraction) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  net_.inject_fault(dst, Fault::loss(0.5));
  int dropped = 0;
  for (int i = 0; i < 400; ++i) {
    if (net_.send(src_, dst, payload_).status == SendStatus::Timeout)
      ++dropped;
  }
  EXPECT_GT(dropped, 120);
  EXPECT_LT(dropped, 280);
}

TEST_F(NetworkTest, CorruptFaultMangledTheResponse) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  net_.inject_fault(dst, Fault::corrupt(1.0));
  const auto result = net_.send(src_, dst, payload_);
  EXPECT_EQ(result.status, SendStatus::Delivered);
  EXPECT_NE(result.response, payload_);
  EXPECT_EQ(result.response.size(), payload_.size());
  EXPECT_GE(net_.stats().corrupted, 1u);
}

TEST_F(NetworkTest, RateLimitRefusesBeyondTheBudget) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  net_.inject_fault(dst, Fault::rate_limit(2));
  // A DNS-header-sized payload so the limiter can synthesize REFUSED.
  const Bytes query = {0xab, 0xcd, 0x01, 0x00, 0, 1, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(net_.send(src_, dst, query).status, SendStatus::Delivered);
  EXPECT_EQ(net_.send(src_, dst, query).status, SendStatus::Delivered);
  const auto limited = net_.send(src_, dst, query);
  ASSERT_EQ(limited.status, SendStatus::Delivered);
  EXPECT_TRUE(limited.response[2] & 0x80);        // QR set
  EXPECT_EQ(limited.response[3] & 0x0f, 5);       // RCODE=REFUSED
  EXPECT_EQ(net_.stats().rate_limited, 1u);
  // The next simulated second starts a fresh window.
  clock_->advance(1);
  const auto fresh = net_.send(src_, dst, query);
  EXPECT_EQ(fresh.response[3] & 0x0f, 0);
  EXPECT_EQ(net_.stats().rate_limited, 1u);
}

TEST_F(NetworkTest, ScriptedFaultWindowDiesAndRecovers) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  const SimTime t0 = clock_->now() + 10;
  net_.fail_between(dst, t0, t0 + 10);
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Delivered);
  clock_->advance(10);  // inside the outage window
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Timeout);
  clock_->advance(10);  // the server has recovered
  EXPECT_EQ(net_.send(src_, dst, payload_).status, SendStatus::Delivered);
}

TEST_F(NetworkTest, LatencyModelAdvancesTheClock) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  LatencyModel model;
  model.enabled = true;
  model.base_rtt_ms = 30;
  model.jitter_ms = 0;
  net_.set_latency(model);
  const auto before = clock_->now_ms();
  const auto result = net_.send(src_, dst, payload_);
  EXPECT_EQ(result.rtt_ms, 30u);
  EXPECT_EQ(clock_->now_ms(), before + 30);
  net_.wait_ms(400);
  EXPECT_EQ(clock_->now_ms(), before + 430);
}

TEST_F(NetworkTest, LatencyDisabledKeepsTheClockStill) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  const auto before = clock_->now_ms();
  (void)net_.send(src_, dst, payload_);
  net_.wait_ms(400);
  EXPECT_EQ(clock_->now_ms(), before);
}

TEST_F(NetworkTest, PerLinkRttOverrideAndJitterStayDeterministic) {
  const auto near = NodeAddress::of("93.184.216.34");
  const auto far = NodeAddress::of("93.184.216.35");
  net_.attach(near, echo_endpoint());
  net_.attach(far, echo_endpoint());
  LatencyModel model;
  model.enabled = true;
  model.base_rtt_ms = 10;
  model.jitter_ms = 5;
  model.seed = 42;
  net_.set_latency(model);
  net_.set_link_rtt(far, 150);
  std::vector<std::uint32_t> rtts;
  for (int i = 0; i < 4; ++i) rtts.push_back(net_.send(src_, near, payload_).rtt_ms);
  for (const auto rtt : rtts) {
    EXPECT_GE(rtt, 10u);
    EXPECT_LE(rtt, 15u);
  }
  EXPECT_GE(net_.send(src_, far, payload_).rtt_ms, 150u);
  // Reseeding reproduces the exact jitter sequence.
  net_.set_latency(model);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(net_.send(src_, near, payload_).rtt_ms, rtts[static_cast<std::size_t>(i)]);
}

TEST_F(NetworkTest, SendLogRecordsTimestampsAndRetransmissions) {
  const auto dst = NodeAddress::of("93.184.216.34");
  net_.attach(dst, echo_endpoint());
  net_.record_sends(true);
  (void)net_.send(src_, dst, payload_);
  clock_->advance(2);
  (void)net_.send(src_, dst, payload_, /*retransmission=*/true);
  const auto& log = net_.send_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_LT(log[0].at_ms, log[1].at_ms);
  EXPECT_FALSE(log[0].retransmission);
  EXPECT_TRUE(log[1].retransmission);
  EXPECT_EQ(net_.stats().retransmits, 1u);
}

TEST(ClockTest, AdvanceAndSet) {
  Clock clock(1000);
  EXPECT_EQ(clock.now(), 1000u);
  clock.advance(500);
  EXPECT_EQ(clock.now(), 1500u);
  clock.set(42);
  EXPECT_EQ(clock.now(), 42u);
}

TEST(ClockTest, MillisecondPrecision) {
  Clock clock(1000);
  EXPECT_EQ(clock.now_ms(), 1'000'000u);
  clock.advance_ms(1500);
  EXPECT_EQ(clock.now(), 1001u);
  EXPECT_EQ(clock.now_ms(), 1'001'500u);
  clock.set(2000);
  EXPECT_EQ(clock.now_ms(), 2'000'000u);
}

TEST(NodeAddressTest, ParseBothFamilies) {
  EXPECT_TRUE(NodeAddress::of("1.2.3.4").is_v4());
  EXPECT_FALSE(NodeAddress::of("2001:db8::1").is_v4());
  EXPECT_THROW((void)NodeAddress::of("not-an-address"), std::invalid_argument);
}

TEST(NodeAddressTest, LoopbackDetection) {
  EXPECT_TRUE(NodeAddress::of("127.0.0.1").is_loopback());
  EXPECT_TRUE(NodeAddress::of("::1").is_loopback());
  EXPECT_FALSE(NodeAddress::of("8.8.8.8").is_loopback());
}

}  // namespace
