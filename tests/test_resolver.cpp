// Recursive-resolver behaviour tests on top of the testbed: caching
// (positive, negative, stale, cached-error), the delegation cache, CNAME
// chasing, iteration limits and wire-level annotation.
#include <gtest/gtest.h>

#include "edns/ede.hpp"
#include "edns/edns.hpp"
#include "resolver/resolver.hpp"
#include "server/auth_server.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace ede;
using resolver::RecursiveResolver;
using resolver::ResolverOptions;

class ResolverTest : public ::testing::Test {
 protected:
  ResolverTest()
      : clock_(std::make_shared<sim::Clock>()),
        network_(std::make_shared<sim::Network>(clock_)),
        testbed_(network_) {}

  RecursiveResolver make(ResolverOptions options = {}) {
    return testbed_.make_resolver(resolver::profile_cloudflare(), options);
  }

  dns::Name valid_name() const {
    return dns::Name::of("valid.extended-dns-errors.com");
  }

  std::shared_ptr<sim::Clock> clock_;
  std::shared_ptr<sim::Network> network_;
  testbed::Testbed testbed_;
};

TEST_F(ResolverTest, ResolvesTheControlDomainSecurely) {
  auto resolver = make();
  const auto outcome = resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR);
  EXPECT_EQ(outcome.security, dnssec::Security::Secure);
  EXPECT_TRUE(outcome.errors.empty());
  ASSERT_FALSE(outcome.response.answer.empty());
  EXPECT_EQ(outcome.response.answer.front().type, dns::RRType::A);
  // The answer carries its RRSIG.
  bool has_sig = false;
  for (const auto& rr : outcome.response.answer)
    has_sig |= rr.type == dns::RRType::RRSIG;
  EXPECT_TRUE(has_sig);
}

TEST_F(ResolverTest, SecondResolutionIsServedFromCache) {
  auto resolver = make();
  (void)resolver.resolve(valid_name(), dns::RRType::A);
  const auto sent_before = network_->stats().packets_sent;
  const auto outcome = resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_EQ(network_->stats().packets_sent, sent_before);  // zero upstream
  EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR);
  EXPECT_EQ(outcome.security, dnssec::Security::Secure);
}

TEST_F(ResolverTest, DelegationCacheSkipsTheUpperHierarchy) {
  auto resolver = make();
  const auto first = resolver.resolve(valid_name(), dns::RRType::A);
  const auto second = resolver.resolve(
      dns::Name::of("unsigned.extended-dns-errors.com"), dns::RRType::A);
  // The second resolution reuses root/com/extended-dns-errors.com contexts.
  EXPECT_LT(second.upstream_queries, first.upstream_queries);
}

TEST_F(ResolverTest, CacheDisabledGoesUpstreamEveryTime) {
  ResolverOptions options;
  options.cache.enabled = false;
  auto resolver = make(options);
  (void)resolver.resolve(valid_name(), dns::RRType::A);
  const auto sent_before = network_->stats().packets_sent;
  (void)resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_GT(network_->stats().packets_sent, sent_before);
}

TEST_F(ResolverTest, NegativeAnswersAreCached) {
  auto resolver = make();
  const auto name = dns::Name::of("nope.valid.extended-dns-errors.com");
  const auto first = resolver.resolve(name, dns::RRType::A);
  EXPECT_EQ(first.rcode, dns::RCode::NXDOMAIN);
  const auto sent_before = network_->stats().packets_sent;
  const auto second = resolver.resolve(name, dns::RRType::A);
  EXPECT_EQ(second.rcode, dns::RCode::NXDOMAIN);
  EXPECT_EQ(network_->stats().packets_sent, sent_before);
}

TEST_F(ResolverTest, ServfailIsCachedWithItsFindings) {
  auto resolver = make();
  const auto name = dns::Name::of("rrsig-exp-all.extended-dns-errors.com");
  const auto first = resolver.resolve(name, dns::RRType::A);
  EXPECT_EQ(first.rcode, dns::RCode::SERVFAIL);

  const auto second = resolver.resolve(name, dns::RRType::A);
  EXPECT_EQ(second.rcode, dns::RCode::SERVFAIL);
  // Served from the error cache: EDE 13 plus the original diagnosis.
  bool cached_error = false, original = false;
  for (const auto& error : second.errors) {
    cached_error |= error.code == edns::EdeCode::CachedError;
    original |= error.code == edns::EdeCode::SignatureExpired;
  }
  EXPECT_TRUE(cached_error);
  EXPECT_TRUE(original);
}

TEST_F(ResolverTest, StaleAnswerServedWhenAuthoritiesDie) {
  auto resolver = make();
  (void)resolver.resolve(valid_name(), dns::RRType::A);

  // Kill the child's nameserver and let the TTL lapse.
  const auto& spec = testbed_.cases().front();
  ASSERT_EQ(spec.label, "valid");
  network_->detach(sim::NodeAddress::of("93.184.218.1"));
  clock_->advance(3600 * 3);  // past the 3600 s TTLs, within stale window

  const auto outcome = resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR);
  bool stale = false, unreachable = false;
  for (const auto& error : outcome.errors) {
    stale |= error.code == edns::EdeCode::StaleAnswer;
    unreachable |= error.code == edns::EdeCode::NoReachableAuthority;
  }
  EXPECT_TRUE(stale);
  EXPECT_TRUE(unreachable);
}

TEST_F(ResolverTest, NoStaleServiceWhenDisabled) {
  ResolverOptions options;
  options.serve_stale = false;
  auto resolver = make(options);
  (void)resolver.resolve(valid_name(), dns::RRType::A);
  network_->detach(sim::NodeAddress::of("93.184.218.1"));
  clock_->advance(3600 * 3);
  const auto outcome = resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::SERVFAIL);
}

TEST_F(ResolverTest, EdeSurvivesTheWireRoundTrip) {
  auto resolver = make();
  const auto outcome = resolver.resolve(
      dns::Name::of("ds-bad-tag.extended-dns-errors.com"), dns::RRType::A);
  ASSERT_FALSE(outcome.errors.empty());
  const auto wire = outcome.response.serialize();
  const auto parsed = dns::Message::parse(wire);
  ASSERT_TRUE(parsed.ok());
  const auto errors = edns::get_extended_errors(parsed.value());
  ASSERT_EQ(errors.size(), outcome.errors.size());
  EXPECT_EQ(errors.front().code, edns::EdeCode::DnskeyMissing);
}

TEST_F(ResolverTest, FlushDropsAllCachedState) {
  auto resolver = make();
  (void)resolver.resolve(valid_name(), dns::RRType::A);
  resolver.flush();
  const auto sent_before = network_->stats().packets_sent;
  (void)resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_GT(network_->stats().packets_sent, sent_before);
}

TEST_F(ResolverTest, UpstreamQueriesAreCounted) {
  auto resolver = make();
  const auto outcome = resolver.resolve(valid_name(), dns::RRType::A);
  // root DNSKEY + 3 referral levels + DNSKEY fetches + final answer.
  EXPECT_GE(outcome.upstream_queries, 5);
  EXPECT_LE(outcome.upstream_queries, 12);
}

TEST_F(ResolverTest, AnswersCarryTheAdBitOnlyWhenSecure) {
  auto resolver = make();
  const auto secure = resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_TRUE(secure.response.header.ad);
  const auto insecure = resolver.resolve(
      dns::Name::of("unsigned.extended-dns-errors.com"), dns::RRType::A);
  EXPECT_FALSE(insecure.response.header.ad);
  EXPECT_EQ(insecure.security, dnssec::Security::Insecure);
}

TEST_F(ResolverTest, ExhaustiveProbingStillResolves) {
  ResolverOptions options;
  options.exhaustive_ns_probing = true;
  auto resolver = make(options);
  const auto outcome = resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR);
  EXPECT_EQ(outcome.security, dnssec::Security::Secure);
}

}  // namespace

namespace {

using namespace ede;

TEST(ResolverTransport, RetransmissionDefeatsIntermittentLoss) {
  auto clock = std::make_shared<sim::Clock>();
  auto network = std::make_shared<sim::Network>(clock);
  testbed::Testbed testbed(network);

  // Drop every other packet to every server the control domain needs.
  for (const char* addr : {"198.41.0.4", "192.5.6.30", "93.184.216.1",
                           "93.184.218.1"}) {
    network->inject_fault(sim::NodeAddress::of(addr),
                          sim::Fault::intermittent());
  }
  auto resolver = testbed.make_resolver(resolver::profile_cloudflare());
  const auto outcome = resolver.resolve(
      dns::Name::of("valid.extended-dns-errors.com"), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR);
  EXPECT_EQ(outcome.security, dnssec::Security::Secure);
  // The losses were observed (timeout findings) but overcome.
  bool saw_timeout = false;
  for (const auto& f : outcome.findings)
    saw_timeout |= f.defect == dnssec::Defect::ServerTimeout;
  EXPECT_TRUE(saw_timeout);
}

TEST(ResolverTransport, EdnsUnawareAuthorityIsFlagged) {
  auto clock = std::make_shared<sim::Clock>();
  auto network = std::make_shared<sim::Network>(clock);

  // An unsigned hierarchy whose leaf server ignores EDNS entirely.
  auto child = std::make_shared<zone::Zone>(dns::Name::of("legacy.test"));
  dns::SoaRdata soa;
  soa.mname = dns::Name::of("ns1.legacy.test");
  soa.rname = dns::Name::of("legacy.test");
  child->add(child->origin(), dns::RRType::SOA, soa);
  child->add(child->origin(), dns::RRType::NS,
             dns::NsRdata{dns::Name::of("ns1.legacy.test")});
  child->add(dns::Name::of("ns1.legacy.test"), dns::RRType::A,
             dns::ARdata{*dns::Ipv4Address::parse("93.184.225.1")});
  child->add(child->origin(), dns::RRType::A,
             dns::ARdata{*dns::Ipv4Address::parse("93.184.225.9")});
  server::ServerConfig config;
  config.edns_aware = false;
  auto child_server = std::make_shared<server::AuthServer>(config);
  child_server->add_zone(child);
  network->attach(sim::NodeAddress::of("93.184.225.1"),
                  child_server->endpoint());

  auto root = std::make_shared<zone::Zone>(dns::Name{});
  dns::SoaRdata root_soa;
  root_soa.mname = dns::Name::of("a.root-servers.net");
  root_soa.rname = dns::Name{};
  root->add(dns::Name{}, dns::RRType::SOA, root_soa);
  root->add(dns::Name{}, dns::RRType::NS,
            dns::NsRdata{dns::Name::of("a.root-servers.net")});
  root->add(dns::Name::of("a.root-servers.net"), dns::RRType::A,
            dns::ARdata{*dns::Ipv4Address::parse("198.41.0.4")});
  root->add(dns::Name::of("legacy.test"), dns::RRType::NS,
            dns::NsRdata{dns::Name::of("ns1.legacy.test")});
  root->add(dns::Name::of("ns1.legacy.test"), dns::RRType::A,
            dns::ARdata{*dns::Ipv4Address::parse("93.184.225.1")});
  const auto root_keys = zone::make_zone_keys(dns::Name{});
  zone::sign_zone(*root, root_keys, {});
  auto root_server = std::make_shared<server::AuthServer>();
  root_server->add_zone(root);
  network->attach(sim::NodeAddress::of("198.41.0.4"),
                  root_server->endpoint());

  resolver::RecursiveResolver resolver(
      network, resolver::profile_cloudflare(),
      {sim::NodeAddress::of("198.41.0.4")}, root_keys.ksk.dnskey, {});
  const auto outcome =
      resolver.resolve(dns::Name::of("legacy.test"), dns::RRType::A);
  // Unsigned delegation: resolution succeeds despite the legacy server.
  EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR);
  bool flagged = false;
  for (const auto& f : outcome.findings) {
    flagged |= f.defect == dnssec::Defect::NoOptInResponse;
  }
  EXPECT_TRUE(flagged);
}

}  // namespace
