// Vendor-profile tests: mapping coverage, per-vendor quirks the paper
// documents, and the validator-configuration differences.
#include <gtest/gtest.h>

#include "edns/ede.hpp"
#include "resolver/profile.hpp"

namespace {

using namespace ede::resolver;
using ede::dnssec::Defect;
using ede::dnssec::Finding;
using ede::dnssec::Stage;
using ede::edns::EdeCode;

Finding finding(Defect defect, std::string detail = "detail") {
  return {Stage::Answer, defect, std::move(detail)};
}

TEST(Profiles, AllSevenInTable4Order) {
  const auto profiles = all_profiles();
  ASSERT_EQ(profiles.size(), 7u);
  EXPECT_EQ(profiles[0].vendor, Vendor::Bind);
  EXPECT_EQ(profiles[1].vendor, Vendor::Unbound);
  EXPECT_EQ(profiles[2].vendor, Vendor::PowerDns);
  EXPECT_EQ(profiles[3].vendor, Vendor::Knot);
  EXPECT_EQ(profiles[4].vendor, Vendor::Cloudflare);
  EXPECT_EQ(profiles[5].vendor, Vendor::Quad9);
  EXPECT_EQ(profiles[6].vendor, Vendor::OpenDns);
}

TEST(Profiles, BindEmitsNoDnssecCodes) {
  const auto bind = profile_bind();
  EXPECT_FALSE(bind.ede_for(finding(Defect::NoMatchingDnskeyForDs)));
  EXPECT_FALSE(bind.ede_for(finding(Defect::AnswerRrsigMissing)));
  EXPECT_FALSE(bind.ede_for(finding(Defect::ServerRefused)));
  // But the serve-stale codes it had shipped are wired.
  EXPECT_EQ(bind.ede_for(finding(Defect::StaleAnswerServed))->code,
            EdeCode::StaleAnswer);
}

TEST(Profiles, OnlyCloudflareEmitsConnectivityCodes) {
  for (const auto& profile : all_profiles()) {
    const auto unreachable =
        profile.ede_for(finding(Defect::AllServersUnreachable));
    if (profile.vendor == Vendor::Cloudflare) {
      ASSERT_TRUE(unreachable.has_value());
      EXPECT_EQ(unreachable->code, EdeCode::NoReachableAuthority);
    } else {
      EXPECT_FALSE(unreachable.has_value()) << profile.name;
    }
  }
}

TEST(Profiles, OpenDnsMapsRefusedToProhibited) {
  EXPECT_EQ(profile_opendns().ede_for(finding(Defect::ServerRefused))->code,
            EdeCode::Prohibited);
  EXPECT_EQ(profile_cloudflare().ede_for(finding(Defect::ServerRefused))->code,
            EdeCode::NetworkError);
}

TEST(Profiles, SpecificityDifferencesOnKeyDefects) {
  const auto f = finding(Defect::NoMatchingDnskeyForDs);
  EXPECT_EQ(profile_unbound().ede_for(f)->code, EdeCode::DnskeyMissing);
  EXPECT_EQ(profile_knot().ede_for(f)->code, EdeCode::DnssecBogus);
  EXPECT_EQ(profile_opendns().ede_for(f)->code, EdeCode::DnssecBogus);
}

TEST(Profiles, CloudflareExcludesEd448) {
  EXPECT_EQ(profile_cloudflare().validator.supported_algorithms.count(16), 0u);
  for (const auto& profile : all_profiles()) {
    if (profile.vendor == Vendor::Cloudflare) continue;
    EXPECT_EQ(profile.validator.supported_algorithms.count(16), 1u)
        << profile.name;
  }
}

TEST(Profiles, NobodySupportsDeprecatedAlgorithms) {
  for (const auto& profile : all_profiles()) {
    EXPECT_EQ(profile.validator.supported_algorithms.count(1), 0u);
    EXPECT_EQ(profile.validator.supported_algorithms.count(3), 0u);
  }
}

TEST(Profiles, ExtraTextPolicies) {
  // Cloudflare forwards the finding detail.
  const auto cf =
      profile_cloudflare().ede_for(finding(Defect::ServerRefused, "1.2.3.4"));
  ASSERT_TRUE(cf.has_value());
  EXPECT_EQ(cf->extra_text, "1.2.3.4");
  // Knot uses its fixed LSLC text regardless of the detail.
  const auto knot = profile_knot().ede_for(
      {Stage::DsLookup, Defect::ZoneAlgorithmUnsupported, "whatever"});
  ASSERT_TRUE(knot.has_value());
  EXPECT_EQ(knot->extra_text, "LSLC: unsupported digest/key");
  // Quad9 emits bare codes.
  const auto q9 = profile_quad9().ede_for(
      finding(Defect::NoMatchingDnskeyForDs, "something"));
  ASSERT_TRUE(q9.has_value());
  EXPECT_TRUE(q9->extra_text.empty());
}

TEST(Profiles, ReferenceMappingCoversEveryDiagnosableDefect) {
  // The idealized profile must map every defect the testbed or the wild
  // scan can produce — that is what makes the what-if experiment a ceiling.
  const auto reference = profile_reference();
  using D = Defect;
  for (const auto defect :
       {D::NoMatchingDnskeyForDs, D::KskNoZoneKeyBit, D::DsDigestMismatch,
        D::DsUnassignedKeyAlgorithm, D::DsReservedKeyAlgorithm,
        D::DsUnknownDigestType, D::DsUnsupportedDigestType,
        D::ZoneAlgorithmUnsupported, D::DnskeyRrsigMissing,
        D::DnskeyNotSignedByKsk, D::DnskeyKskSigInvalid, D::DnskeyRrsigInvalid,
        D::DnskeyRrsigExpired, D::DnskeyRrsigNotYetValid,
        D::DnskeyRrsigExpiredBeforeValid, D::NoZoneKeysAtAll,
        D::StandbyKeyNotSigned, D::AnswerRrsigMissing, D::AnswerRrsigExpired,
        D::AnswerRrsigNotYetValid, D::AnswerRrsigExpiredBeforeValid,
        D::AnswerRrsigInvalid, D::AnswerSigKeyMissing, D::ZskNoZoneKeyBit,
        D::ZskAlgorithmMismatch, D::ZskUnassignedAlgorithm,
        D::ZskReservedAlgorithm, D::DenialNsec3RecordsMissing,
        D::DenialNsec3NoMatchingHash, D::DenialNsec3BadNextOwner,
        D::DenialNsec3SigInvalid, D::DenialNsec3SigMissing,
        D::DenialParamMissing, D::DenialSaltMismatch, D::DenialAllMissing,
        D::InsecureReferralProofFailed, D::Nsec3IterationsTooHigh,
        D::AllServersUnreachable, D::ServerRefused, D::ServerServfail,
        D::ServerTimeout, D::ServerNotAuth, D::DnskeyFetchFailed,
        D::MismatchedQuestion, D::IterationLimitExceeded,
        D::StaleAnswerServed, D::StaleNxdomainServed, D::CachedServfail,
        D::QueryBlocked, D::QueryProhibited}) {
    EXPECT_TRUE(reference.ede_for(finding(defect)).has_value())
        << ede::dnssec::to_string(defect);
  }
}

TEST(Profiles, ReferenceUsesTheCodesNobodyImplementedIn2023) {
  const auto reference = profile_reference();
  EXPECT_EQ(reference.ede_for(finding(Defect::DnskeyRrsigExpiredBeforeValid))
                ->code,
            EdeCode::SignatureExpiredBeforeValid);  // EDE 25
  EXPECT_EQ(reference.ede_for(finding(Defect::ZskNoZoneKeyBit))->code,
            EdeCode::NoZoneKeyBitSet);  // EDE 11
  EXPECT_EQ(reference.ede_for(finding(Defect::Nsec3IterationsTooHigh))->code,
            EdeCode::UnsupportedNsec3IterValue);  // EDE 27
  // Every mapped code is a registered one.
  for (const auto& [defect, code] : reference.mapping) {
    (void)defect;
    EXPECT_TRUE(ede::edns::is_registered(code));
  }
}

TEST(Profiles, SourceAddressesAreDistinctAndRoutable) {
  std::set<std::string> seen;
  for (const auto& profile : all_profiles()) {
    EXPECT_TRUE(seen.insert(profile.source.to_string()).second);
  }
  // The famous anycast addresses are spot-checked.
  EXPECT_EQ(profile_cloudflare().source.to_string(), "1.1.1.1");
  EXPECT_EQ(profile_quad9().source.to_string(), "9.9.9.9");
}

}  // namespace
