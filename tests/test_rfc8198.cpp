// RFC 8198 aggressive-negative-caching edge cases (satellite of the
// frontline serving PR): the resolver must synthesize NXDOMAIN/NODATA
// only from proofs that actually prove plain nonexistence. Opt-out NSEC3
// spans, wildcard-adjacent NSEC spans and expired proofs must never feed
// synthesis, and a synthesized negative inherits the proof's SOA-bounded
// lifetime rather than a fresh TTL window of its own.
#include <gtest/gtest.h>

#include <memory>

#include "edns/ede.hpp"
#include "resolver/resolver.hpp"
#include "server/auth_server.hpp"
#include "simnet/network.hpp"
#include "simnet/stream.hpp"
#include "zone/signer.hpp"
#include "zone/zone.hpp"

namespace {

using namespace ede;

bool has_ede(const resolver::Outcome& outcome, edns::EdeCode code) {
  for (const auto& error : outcome.errors) {
    if (error.code == code) return true;
  }
  return false;
}

// A small signed hierarchy with one child zone per denial flavour:
//   n3.test    NSEC3, no opt-out        (the healthy synthesis baseline)
//   opt.test   NSEC3 with opt-out set   (proofs must be rejected)
//   flat.test  flat NSEC                (deterministic cross-name spans)
//   wild.test  flat NSEC + `*.wild.test A` (wildcard-adjacent spans)
class Rfc8198 : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_shared<sim::Clock>();
    network_ = std::make_shared<sim::Network>(clock_);

    auto root_zone = std::make_shared<zone::Zone>(dns::Name{});
    dns::SoaRdata root_soa;
    root_soa.mname = dns::Name::of("a.root-servers.net");
    root_soa.minimum = 300;
    root_zone->add(dns::Name{}, dns::RRType::SOA, root_soa);
    root_zone->add(dns::Name{}, dns::RRType::NS,
                   dns::NsRdata{dns::Name::of("a.root-servers.net")});
    root_zone->add(dns::Name::of("a.root-servers.net"), dns::RRType::A,
                   dns::ARdata{*dns::Ipv4Address::parse("198.41.0.4")});

    zone::SigningPolicy n3_default;
    add_child(*root_zone, "n3.test", "93.184.220.1", [](zone::Zone&) {},
              n3_default);

    zone::SigningPolicy opt_out;
    opt_out.nsec3_opt_out = true;
    add_child(*root_zone, "opt.test", "93.184.220.2", [](zone::Zone&) {},
              opt_out);

    zone::SigningPolicy flat;
    flat.denial = zone::DenialMode::Nsec;
    add_child(*root_zone, "flat.test", "93.184.220.3",
              [](zone::Zone& z) {
                z.add(dns::Name::of("alpha.flat.test"), dns::RRType::A,
                      dns::ARdata{*dns::Ipv4Address::parse("192.0.2.10")});
              },
              flat);
    add_child(*root_zone, "wild.test", "93.184.220.4",
              [](zone::Zone& z) {
                z.add(dns::Name::of("*.wild.test"), dns::RRType::A,
                      dns::ARdata{*dns::Ipv4Address::parse("192.0.2.20")});
              },
              flat);

    const auto root_keys = zone::make_zone_keys(dns::Name{});
    trust_anchor_ = root_keys.ksk.dnskey;
    for (auto& [child, keys] : pending_ds_) {
      for (const auto& ds : zone::ds_records(child, keys)) {
        root_zone->add(child, dns::RRType::DS, ds);
      }
    }
    zone::sign_zone(*root_zone, root_keys, {});
    auto root_server = std::make_shared<server::AuthServer>();
    root_server->add_zone(root_zone);
    attach(*root_server, "198.41.0.4");
    servers_.push_back(std::move(root_server));
  }

  // Signed NXDOMAINs with their NSEC3 proofs can overflow the 1232-byte
  // EDNS UDP budget, so every authority also listens for the DoTCP
  // fallback.
  void attach(server::AuthServer& server, const char* addr) {
    network_->attach(sim::NodeAddress::of(addr), server.endpoint());
    network_->stream().listen(sim::NodeAddress::of(addr),
                              server.stream_endpoint());
  }

  template <typename Fill>
  void add_child(zone::Zone& root_zone, const char* origin, const char* addr,
                 Fill fill, const zone::SigningPolicy& policy) {
    const auto child = dns::Name::of(origin);
    const auto ns_name = dns::Name::of(std::string{"ns1."} + origin);
    auto zone = std::make_shared<zone::Zone>(child);
    dns::SoaRdata soa;
    soa.mname = ns_name;
    soa.rname = child;
    soa.minimum = 300;
    zone->add(child, dns::RRType::SOA, soa);
    zone->add(child, dns::RRType::NS, dns::NsRdata{ns_name});
    zone->add(ns_name, dns::RRType::A,
              dns::ARdata{*dns::Ipv4Address::parse(addr)});
    zone->add(child, dns::RRType::A,
              dns::ARdata{*dns::Ipv4Address::parse("192.0.2.1")});
    fill(*zone);
    const auto keys = zone::make_zone_keys(child);
    zone::sign_zone(*zone, keys, policy);

    root_zone.add(child, dns::RRType::NS, dns::NsRdata{ns_name});
    root_zone.add(ns_name, dns::RRType::A,
                  dns::ARdata{*dns::Ipv4Address::parse(addr)});
    pending_ds_.emplace_back(child, keys);

    auto server = std::make_shared<server::AuthServer>();
    server->add_zone(zone);
    attach(*server, addr);
    servers_.push_back(std::move(server));
  }

  resolver::RecursiveResolver make_resolver() {
    resolver::ResolverOptions options;
    options.aggressive_nsec_caching = true;
    return resolver::RecursiveResolver(
        network_, resolver::profile_reference(),
        {sim::NodeAddress::of("198.41.0.4")}, trust_anchor_, options);
  }

  std::uint64_t packets() const { return network_->stats().packets_sent; }

  std::shared_ptr<sim::Clock> clock_;
  std::shared_ptr<sim::Network> network_;
  std::vector<std::pair<dns::Name, zone::ZoneKeys>> pending_ds_;
  std::vector<std::shared_ptr<server::AuthServer>> servers_;
  dns::DnskeyRdata trust_anchor_;
};

// Baseline: a validated NSEC3 proof (no opt-out) feeds synthesis. The
// second query reuses the first proof without any upstream traffic and
// announces it with EDE 29.
TEST_F(Rfc8198, Nsec3ProofSynthesizesAcrossTypes) {
  auto resolver = make_resolver();
  const auto first =
      resolver.resolve(dns::Name::of("aaa.n3.test"), dns::RRType::A);
  ASSERT_EQ(first.rcode, dns::RCode::NXDOMAIN);
  EXPECT_FALSE(has_ede(first, edns::EdeCode::Synthesized));

  // Same owner, different type: its NSEC3 hash is covered by the very
  // span the first answer proved, so synthesis is deterministic.
  const auto before = packets();
  const auto second =
      resolver.resolve(dns::Name::of("aaa.n3.test"), dns::RRType::AAAA);
  EXPECT_EQ(second.rcode, dns::RCode::NXDOMAIN);
  EXPECT_EQ(packets(), before);
  EXPECT_TRUE(has_ede(second, edns::EdeCode::Synthesized));
}

// RFC 5155 §6: an opt-out span may hide unsigned delegations, so it
// proves nothing about plain nonexistence. The covered re-query must go
// back upstream instead of being synthesized.
TEST_F(Rfc8198, OptOutNsec3SpansAreNeverCaptured) {
  auto resolver = make_resolver();
  const auto first =
      resolver.resolve(dns::Name::of("aaa.opt.test"), dns::RRType::A);
  ASSERT_EQ(first.rcode, dns::RCode::NXDOMAIN);

  const auto before = packets();
  const auto second =
      resolver.resolve(dns::Name::of("aaa.opt.test"), dns::RRType::AAAA);
  EXPECT_EQ(second.rcode, dns::RCode::NXDOMAIN);
  EXPECT_GT(packets(), before);
  EXPECT_FALSE(has_ede(second, edns::EdeCode::Synthesized));
}

// Flat NSEC: the span alpha.flat.test -> ns1.flat.test from one NXDOMAIN
// proof deterministically covers every other label between them, so a
// different nonexistent name synthesizes locally.
TEST_F(Rfc8198, FlatNsecSynthesizesAcrossNames) {
  auto resolver = make_resolver();
  const auto first =
      resolver.resolve(dns::Name::of("bbb.flat.test"), dns::RRType::A);
  ASSERT_EQ(first.rcode, dns::RCode::NXDOMAIN);

  const auto before = packets();
  const auto second =
      resolver.resolve(dns::Name::of("charlie.flat.test"), dns::RRType::A);
  EXPECT_EQ(second.rcode, dns::RCode::NXDOMAIN);
  EXPECT_EQ(packets(), before);
  EXPECT_TRUE(has_ede(second, edns::EdeCode::Synthesized));
}

// NODATA synthesis: an exact-owner NSEC records which types exist there,
// so a second query for another absent type at the same owner is
// answerable locally.
TEST_F(Rfc8198, FlatNsecSynthesizesNodataForAbsentTypes) {
  auto resolver = make_resolver();
  const auto first =
      resolver.resolve(dns::Name::of("alpha.flat.test"), dns::RRType::TXT);
  ASSERT_EQ(first.rcode, dns::RCode::NOERROR);
  ASSERT_TRUE(first.response.answer.empty());

  const auto before = packets();
  const auto second =
      resolver.resolve(dns::Name::of("alpha.flat.test"), dns::RRType::MX);
  EXPECT_EQ(second.rcode, dns::RCode::NOERROR);
  EXPECT_TRUE(second.response.answer.empty());
  EXPECT_EQ(packets(), before);
  EXPECT_TRUE(has_ede(second, edns::EdeCode::Synthesized));

  // The owner's type bitmap lists A, so the positive type still resolves.
  const auto positive =
      resolver.resolve(dns::Name::of("alpha.flat.test"), dns::RRType::A);
  EXPECT_EQ(positive.rcode, dns::RCode::NOERROR);
  EXPECT_FALSE(positive.response.answer.empty());
}

// A span with a wildcard endpoint proves facts about wildcard expansion,
// not nonexistence: synthesizing NXDOMAIN across it would deny names the
// wildcard actually answers. In wild.test every NSEC a negative answer
// carries touches `*.wild.test` (the covering span's owner is the
// wildcard itself), so after a TXT denial a fresh name queried for A must
// still reach upstream and expand — a resolver that captured the span
// would synthesize NXDOMAIN and break the wildcard.
TEST_F(Rfc8198, WildcardAdjacentNsecSpansAreNeverCaptured) {
  auto resolver = make_resolver();
  const auto denied =
      resolver.resolve(dns::Name::of("aaa.wild.test"), dns::RRType::TXT);
  ASSERT_TRUE(denied.response.answer.empty());
  ASSERT_TRUE(denied.rcode == dns::RCode::NXDOMAIN ||
              denied.rcode == dns::RCode::NOERROR);

  const auto before = packets();
  const auto expanded =
      resolver.resolve(dns::Name::of("bbb.wild.test"), dns::RRType::A);
  EXPECT_EQ(expanded.rcode, dns::RCode::NOERROR);
  EXPECT_FALSE(expanded.response.answer.empty());
  EXPECT_GT(packets(), before);
  EXPECT_FALSE(has_ede(expanded, edns::EdeCode::Synthesized));
}

// Proofs age out on the SOA-bounded schedule (minimum = 300 s here): a
// covered name queried after expiry goes upstream again.
TEST_F(Rfc8198, ExpiredProofsAreNotUsedForSynthesis) {
  auto resolver = make_resolver();
  const auto first =
      resolver.resolve(dns::Name::of("bbb.flat.test"), dns::RRType::A);
  ASSERT_EQ(first.rcode, dns::RCode::NXDOMAIN);

  clock_->advance(400);  // past the 300 s proof lifetime
  const auto before = packets();
  const auto second =
      resolver.resolve(dns::Name::of("charlie.flat.test"), dns::RRType::A);
  EXPECT_EQ(second.rcode, dns::RCode::NXDOMAIN);
  EXPECT_GT(packets(), before);
  EXPECT_FALSE(has_ede(second, edns::EdeCode::Synthesized));
}

// The synthesized negative inherits the proof's remaining lifetime, not a
// fresh 300 s window: a proof captured at t0 expires at t0+300, so a
// negative synthesized from it at t0+200 must also be gone by t0+350.
TEST_F(Rfc8198, SynthesizedNegativesInheritTheProofBound) {
  auto resolver = make_resolver();
  const auto first =
      resolver.resolve(dns::Name::of("bbb.flat.test"), dns::RRType::A);
  ASSERT_EQ(first.rcode, dns::RCode::NXDOMAIN);

  clock_->advance(200);
  const auto before_synth = packets();
  const auto synthesized =
      resolver.resolve(dns::Name::of("charlie.flat.test"), dns::RRType::A);
  ASSERT_EQ(synthesized.rcode, dns::RCode::NXDOMAIN);
  ASSERT_EQ(packets(), before_synth);
  ASSERT_TRUE(has_ede(synthesized, edns::EdeCode::Synthesized));

  // t0+350: a full negative TTL from synthesis time would still be fresh
  // (until t0+500); the SOA-bounded entry is not.
  clock_->advance(150);
  const auto before = packets();
  const auto after =
      resolver.resolve(dns::Name::of("charlie.flat.test"), dns::RRType::A);
  EXPECT_EQ(after.rcode, dns::RCode::NXDOMAIN);
  EXPECT_GT(packets(), before);
  EXPECT_FALSE(has_ede(after, edns::EdeCode::Synthesized));
}

}  // namespace
