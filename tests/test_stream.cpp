// The stream transport in isolation: RFC 1035 §4.2.2 framing edge cases
// (a length prefix split across segment boundaries, zero-length frames,
// over-declared prefixes), the connection lifecycle (refuse, SYN drop,
// idle timeout, mid-stream close), the hostile-behavior zoo, and the
// fixed-seed replay guarantee chaos storylines depend on.
#include <gtest/gtest.h>

#include <memory>

#include "dnscore/message.hpp"
#include "dnscore/rdata.hpp"
#include "simnet/byzantine.hpp"
#include "simnet/stream.hpp"

namespace {

using ede::crypto::Bytes;
using ede::crypto::BytesView;
using ede::sim::Clock;
using ede::sim::FrameAssembler;
using ede::sim::NodeAddress;
using ede::sim::StreamBehavior;
using ede::sim::StreamTransport;
using ConnectStatus = StreamTransport::ConnectStatus;
using IoStatus = StreamTransport::IoStatus;
using Status = FrameAssembler::Status;

Bytes bytes_of(std::initializer_list<std::uint8_t> values) {
  return Bytes(values.begin(), values.end());
}

// --- framing ----------------------------------------------------------

TEST(Framing, PrefixThenPayload) {
  const Bytes payload = bytes_of({0xde, 0xad, 0xbe, 0xef});
  const Bytes framed = ede::sim::frame_message(payload);
  ASSERT_EQ(framed.size(), 6u);
  EXPECT_EQ(framed[0], 0x00);
  EXPECT_EQ(framed[1], 0x04);
  EXPECT_EQ(Bytes(framed.begin() + 2, framed.end()), payload);
}

TEST(Framing, PrefixSpanningSegmentBoundaries) {
  // The two length bytes arrive in different segments, and so does the
  // payload: the assembler must never misread a half-received prefix.
  const Bytes payload = bytes_of({1, 2, 3, 4, 5});
  const Bytes framed = ede::sim::frame_message(payload);

  FrameAssembler assembler;
  assembler.feed(BytesView(framed.data(), 1));  // first prefix byte only
  EXPECT_EQ(assembler.pop().status, Status::NeedMore);
  assembler.feed(BytesView(framed.data() + 1, 1));  // second prefix byte
  EXPECT_EQ(assembler.pop().status, Status::NeedMore);
  assembler.feed(BytesView(framed.data() + 2, 2));  // part of the payload
  EXPECT_EQ(assembler.pop().status, Status::NeedMore);
  assembler.feed(BytesView(framed.data() + 4, framed.size() - 4));

  const auto result = assembler.pop();
  ASSERT_EQ(result.status, Status::Frame);
  EXPECT_EQ(result.frame, payload);
  EXPECT_EQ(assembler.pending(), 0u);
}

TEST(Framing, ZeroLengthFrameIsBadButRecoverable) {
  FrameAssembler assembler;
  assembler.feed(bytes_of({0x00, 0x00}));  // zero-length frame
  const Bytes payload = bytes_of({9, 8, 7});
  assembler.feed(ede::sim::frame_message(payload));

  EXPECT_EQ(assembler.pop().status, Status::BadFrame);
  const auto next = assembler.pop();
  ASSERT_EQ(next.status, Status::Frame);
  EXPECT_EQ(next.frame, payload);
}

TEST(Framing, OverDeclaredPrefixNeverCompletes) {
  FrameAssembler assembler;
  // Prefix promises 100 bytes; only 3 ever arrive. Indistinguishable from
  // a frame in flight, so the reader's patience is the only way out.
  assembler.feed(bytes_of({0x00, 100, 1, 2, 3}));
  EXPECT_EQ(assembler.pop().status, Status::NeedMore);
  EXPECT_EQ(assembler.pop().status, Status::NeedMore);
  EXPECT_EQ(assembler.pending(), 5u);
}

TEST(Framing, BackToBackFramesInOneBuffer) {
  const Bytes first = bytes_of({1, 1});
  const Bytes second = bytes_of({2, 2, 2});
  FrameAssembler assembler;
  Bytes wire = ede::sim::frame_message(first);
  const Bytes tail = ede::sim::frame_message(second);
  wire.insert(wire.end(), tail.begin(), tail.end());
  assembler.feed(wire);

  auto a = assembler.pop();
  auto b = assembler.pop();
  ASSERT_EQ(a.status, Status::Frame);
  ASSERT_EQ(b.status, Status::Frame);
  EXPECT_EQ(a.frame, first);
  EXPECT_EQ(b.frame, second);
  EXPECT_EQ(assembler.pop().status, Status::NeedMore);
}

// --- connection lifecycle ---------------------------------------------

struct StreamWorld {
  StreamWorld() : clock(std::make_shared<Clock>()), transport(clock, 42) {
    transport.listen(server, [this](BytesView query, const auto&) {
      last_query = Bytes(query.begin(), query.end());
      return std::optional<Bytes>(bytes_of({0xab, 0xcd}));
    });
  }

  ede::sim::StreamTransport::IoResult ask(StreamTransport& t,
                                          std::uint64_t conn_id) {
    return t.exchange(conn_id, bytes_of({0x01}));
  }

  std::shared_ptr<Clock> clock;
  StreamTransport transport;
  NodeAddress client = NodeAddress::of("192.0.2.1");
  NodeAddress server = NodeAddress::of("93.184.216.1");
  Bytes last_query;
};

TEST(StreamLifecycle, HandshakeExchangeClose) {
  StreamWorld w;
  const auto conn = w.transport.connect(w.client, w.server);
  ASSERT_EQ(conn.status, ConnectStatus::Established);
  EXPECT_TRUE(w.transport.open(conn.conn_id));

  const auto io = w.ask(w.transport, conn.conn_id);
  ASSERT_EQ(io.status, IoStatus::Ok);
  EXPECT_EQ(w.last_query, bytes_of({0x01}));  // de-framed server side

  FrameAssembler assembler;
  assembler.feed(io.bytes);
  const auto frame = assembler.pop();
  ASSERT_EQ(frame.status, Status::Frame);
  EXPECT_EQ(frame.frame, bytes_of({0xab, 0xcd}));

  w.transport.close(conn.conn_id);
  EXPECT_FALSE(w.transport.open(conn.conn_id));
  EXPECT_EQ(w.transport.stats().frames_delivered, 1u);
}

TEST(StreamLifecycle, NobodyListeningLooksRefused) {
  StreamWorld w;
  const auto conn =
      w.transport.connect(w.client, NodeAddress::of("93.184.216.77"));
  EXPECT_EQ(conn.status, ConnectStatus::Refused);
  EXPECT_EQ(w.transport.stats().connects_refused, 1u);
}

TEST(StreamLifecycle, RefuseBehaviorSendsRst) {
  StreamWorld w;
  w.transport.set_behaviors(w.server, {StreamBehavior::refuse()});
  EXPECT_EQ(w.transport.connect(w.client, w.server).status,
            ConnectStatus::Refused);
}

TEST(StreamLifecycle, SynDropTimesOut) {
  StreamWorld w;
  w.transport.set_behaviors(w.server, {StreamBehavior::syn_drop()});
  EXPECT_EQ(w.transport.connect(w.client, w.server).status,
            ConnectStatus::Timeout);
  EXPECT_EQ(w.transport.stats().connects_dropped, 1u);
}

TEST(StreamLifecycle, IdleConnectionIsReaped) {
  StreamWorld w;
  const auto conn = w.transport.connect(w.client, w.server);
  ASSERT_EQ(conn.status, ConnectStatus::Established);
  w.clock->advance_ms(31'000);
  EXPECT_EQ(w.ask(w.transport, conn.conn_id).status, IoStatus::Closed);
  EXPECT_EQ(w.transport.stats().idle_closes, 1u);
  EXPECT_FALSE(w.transport.open(conn.conn_id));
}

TEST(StreamLifecycle, BehaviorWindowExpires) {
  StreamWorld w;
  w.transport.set_behaviors(
      w.server, {StreamBehavior::refuse().between(0, ede::sim::kDefaultNow)});
  // The window closed before the testbed's fixed "now": connects succeed.
  EXPECT_EQ(w.transport.connect(w.client, w.server).status,
            ConnectStatus::Established);
}

// --- hostile exchange behaviors ---------------------------------------

TEST(StreamHostility, StallReadsAsTimeout) {
  StreamWorld w;
  w.transport.set_behaviors(w.server, {StreamBehavior::stall()});
  const auto conn = w.transport.connect(w.client, w.server);
  ASSERT_EQ(conn.status, ConnectStatus::Established);
  EXPECT_EQ(w.ask(w.transport, conn.conn_id).status, IoStatus::Timeout);
  EXPECT_EQ(w.transport.stats().stalls, 1u);
}

TEST(StreamHostility, MidCloseDeliversAPartialFrame) {
  StreamWorld w;
  w.transport.set_behaviors(w.server,
                            {StreamBehavior::mid_close(1.0, /*bytes=*/3)});
  const auto conn = w.transport.connect(w.client, w.server);
  ASSERT_EQ(conn.status, ConnectStatus::Established);
  const auto io = w.ask(w.transport, conn.conn_id);
  EXPECT_EQ(io.status, IoStatus::Closed);
  EXPECT_EQ(io.bytes.size(), 3u);  // prefix + one payload byte, then FIN
  EXPECT_FALSE(w.transport.open(conn.conn_id));

  FrameAssembler assembler;
  assembler.feed(io.bytes);
  EXPECT_EQ(assembler.pop().status, Status::NeedMore);
}

TEST(StreamHostility, GarbageFrameNeverAssembles) {
  StreamWorld w;
  w.transport.set_behaviors(w.server, {StreamBehavior::garbage_frame()});
  const auto conn = w.transport.connect(w.client, w.server);
  ASSERT_EQ(conn.status, ConnectStatus::Established);
  const auto io = w.ask(w.transport, conn.conn_id);
  ASSERT_EQ(io.status, IoStatus::Ok);

  FrameAssembler assembler;
  assembler.feed(io.bytes);
  const auto popped = assembler.pop();
  EXPECT_TRUE(popped.status == Status::BadFrame ||
              popped.status == Status::NeedMore);
  EXPECT_EQ(w.transport.stats().garbage_frames, 1u);
}

TEST(StreamHostility, DifferentAnswerForgesUnsignedReply) {
  StreamWorld w;
  // A real DNS query this time, so the forge has a question to answer.
  ede::dns::Message query;
  query.header.id = 0x1234;
  query.question.push_back({ede::dns::Name::of("victim.example"),
                            ede::dns::RRType::A, ede::dns::RRClass::IN});
  w.transport.set_behaviors(w.server, {StreamBehavior::different_answer()});
  const auto conn = w.transport.connect(w.client, w.server);
  ASSERT_EQ(conn.status, ConnectStatus::Established);
  const auto io = w.transport.exchange(conn.conn_id, query.serialize());
  ASSERT_EQ(io.status, IoStatus::Ok);

  FrameAssembler assembler;
  assembler.feed(io.bytes);
  auto frame = assembler.pop();
  ASSERT_EQ(frame.status, Status::Frame);
  auto parsed = ede::dns::Message::parse(frame.frame);
  ASSERT_TRUE(parsed.ok());
  const auto& forged = parsed.value();
  EXPECT_EQ(forged.header.id, 0x1234);
  ASSERT_EQ(forged.answer.size(), 1u);
  EXPECT_EQ(forged.answer[0].type, ede::dns::RRType::A);
  // Unsigned and bearing the poison marker: validation must reject it and
  // the scrubber must shed the additional record.
  EXPECT_TRUE(forged.authority.empty());
  ASSERT_FALSE(forged.additional.empty());
  EXPECT_EQ(forged.additional[0].name, ede::sim::poison_marker());
  EXPECT_EQ(w.transport.stats().forged_answers, 1u);
}

// --- determinism ------------------------------------------------------

// A fixed seed must replay the exact same connection-fault storyline:
// same refusals, same garbage draws, same segment-loss pattern. This is
// the property the chaos campaign's run-twice-and-compare check rests on.
TEST(StreamDeterminism, FixedSeedStorylineReplays) {
  const auto run = [](std::uint64_t seed) {
    auto clock = std::make_shared<Clock>();
    StreamTransport transport(clock, seed);
    const auto server = NodeAddress::of("93.184.216.1");
    const auto client = NodeAddress::of("192.0.2.1");
    transport.listen(server, [](BytesView, const auto&) {
      return std::optional<Bytes>(Bytes(700, 0x5a));
    });
    transport.set_behaviors(
        server, {StreamBehavior::refuse(0.3), StreamBehavior::stall(0.2),
                 StreamBehavior::segment_loss(0.5, 40)});

    std::vector<int> story;
    for (int i = 0; i < 64; ++i) {
      const auto conn = transport.connect(client, server);
      story.push_back(static_cast<int>(conn.status));
      if (conn.status != ConnectStatus::Established) continue;
      const auto io = transport.exchange(conn.conn_id, Bytes(40, 0x01));
      story.push_back(static_cast<int>(io.status));
      story.push_back(static_cast<int>(io.bytes.size()));
      transport.close(conn.conn_id);
    }
    story.push_back(static_cast<int>(transport.stats().segments_lost));
    story.push_back(static_cast<int>(transport.stats().stalls));
    return story;
  };

  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // and the seed actually matters
}

}  // namespace
