// Authoritative-server tests: RFC 1034 lookup outcomes, referral
// composition (glue, DS, insecure-delegation proof), NSEC3-backed negative
// answers, ACLs and the pathological behaviours the wild scan models.
#include <gtest/gtest.h>

#include "edns/edns.hpp"
#include "server/auth_server.hpp"
#include "zone/signer.hpp"

namespace {

using namespace ede::server;
using namespace ede::dns;
using ede::sim::NodeAddress;
using ede::sim::PacketContext;

class AuthServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto zone = std::make_shared<ede::zone::Zone>(Name::of("example.com"));
    SoaRdata soa;
    soa.mname = Name::of("ns1.example.com");
    soa.rname = Name::of("hostmaster.example.com");
    soa.minimum = 300;
    zone->add(Name::of("example.com"), RRType::SOA, soa);
    zone->add(Name::of("example.com"), RRType::NS,
              NsRdata{Name::of("ns1.example.com")});
    zone->add(Name::of("ns1.example.com"), RRType::A,
              ARdata{*Ipv4Address::parse("93.184.216.1")});
    zone->add(Name::of("example.com"), RRType::A,
              ARdata{*Ipv4Address::parse("93.184.216.34")});
    zone->add(Name::of("www.example.com"), RRType::CNAME,
              CnameRdata{Name::of("example.com")});
    // Signed delegation.
    zone->add(Name::of("signedchild.example.com"), RRType::NS,
              NsRdata{Name::of("ns1.signedchild.example.com")});
    zone->add(Name::of("ns1.signedchild.example.com"), RRType::A,
              ARdata{*Ipv4Address::parse("93.184.216.50")});
    child_keys_ =
        ede::zone::make_zone_keys(Name::of("signedchild.example.com"));
    for (const auto& ds : ede::zone::ds_records(
             Name::of("signedchild.example.com"), child_keys_)) {
      zone->add(Name::of("signedchild.example.com"), RRType::DS, ds);
    }
    // Unsigned delegation.
    zone->add(Name::of("unsignedchild.example.com"), RRType::NS,
              NsRdata{Name::of("ns1.unsignedchild.example.com")});
    zone->add(Name::of("ns1.unsignedchild.example.com"), RRType::A,
              ARdata{*Ipv4Address::parse("93.184.216.51")});

    keys_ = ede::zone::make_zone_keys(zone->origin());
    ede::zone::sign_zone(*zone, keys_, {});
    zone_ = zone;
    server_.add_zone(zone_);
  }

  Message ask(std::string_view qname, RRType qtype, bool dnssec_ok = true,
              NodeAddress source = NodeAddress::of("192.0.2.100")) {
    Message query = make_query(1, Name::of(qname), qtype);
    ede::edns::Edns edns;
    edns.dnssec_ok = dnssec_ok;
    edns.udp_payload_size = 0xffff;  // "TCP": no truncation in direct tests
    ede::edns::set_edns(query, edns);
    return server_.handle(query, PacketContext{source});
  }

  static std::size_t count_type(const std::vector<ResourceRecord>& section,
                                RRType type) {
    return static_cast<std::size_t>(
        std::count_if(section.begin(), section.end(),
                      [&](const auto& rr) { return rr.type == type; }));
  }

  std::shared_ptr<ede::zone::Zone> zone_;
  ede::zone::ZoneKeys keys_;
  ede::zone::ZoneKeys child_keys_;
  AuthServer server_;
};

TEST_F(AuthServerTest, PositiveAnswerWithSignatures) {
  const auto response = ask("example.com", RRType::A);
  EXPECT_EQ(response.header.rcode, RCode::NOERROR);
  EXPECT_TRUE(response.header.aa);
  EXPECT_EQ(count_type(response.answer, RRType::A), 1u);
  EXPECT_EQ(count_type(response.answer, RRType::RRSIG), 1u);
}

TEST_F(AuthServerTest, NoSignaturesWithoutDoBit) {
  const auto response = ask("example.com", RRType::A, /*dnssec_ok=*/false);
  EXPECT_EQ(count_type(response.answer, RRType::RRSIG), 0u);
}

TEST_F(AuthServerTest, CnameAnswersOtherTypes) {
  const auto response = ask("www.example.com", RRType::A);
  EXPECT_EQ(count_type(response.answer, RRType::CNAME), 1u);
}

TEST_F(AuthServerTest, SignedReferralCarriesDs) {
  const auto response = ask("deep.signedchild.example.com", RRType::A);
  EXPECT_EQ(response.header.rcode, RCode::NOERROR);
  EXPECT_FALSE(response.header.aa);
  EXPECT_TRUE(response.answer.empty());
  EXPECT_EQ(count_type(response.authority, RRType::NS), 1u);
  EXPECT_EQ(count_type(response.authority, RRType::DS), 1u);
  EXPECT_GE(count_type(response.authority, RRType::RRSIG), 1u);
  // Glue for the in-bailiwick nameserver.
  EXPECT_EQ(count_type(response.additional, RRType::A), 1u);
}

TEST_F(AuthServerTest, UnsignedReferralCarriesNsec3Proof) {
  const auto response = ask("unsignedchild.example.com", RRType::A);
  EXPECT_EQ(count_type(response.authority, RRType::NS), 1u);
  EXPECT_EQ(count_type(response.authority, RRType::DS), 0u);
  EXPECT_EQ(count_type(response.authority, RRType::NSEC3), 1u);
}

TEST_F(AuthServerTest, DsQueryAtCutIsAnsweredByParent) {
  const auto response = ask("signedchild.example.com", RRType::DS);
  EXPECT_TRUE(response.header.aa);
  EXPECT_EQ(count_type(response.answer, RRType::DS), 1u);
}

TEST_F(AuthServerTest, NxdomainHasSoaAndNsec3Proof) {
  const auto response = ask("nope.example.com", RRType::A);
  EXPECT_EQ(response.header.rcode, RCode::NXDOMAIN);
  EXPECT_TRUE(response.header.aa);
  EXPECT_EQ(count_type(response.authority, RRType::SOA), 1u);
  // Closest-encloser match + next-closer cover + wildcard cover, possibly
  // deduplicated.
  EXPECT_GE(count_type(response.authority, RRType::NSEC3), 1u);
  EXPECT_GE(count_type(response.authority, RRType::RRSIG), 2u);
}

TEST_F(AuthServerTest, NodataKeepsNoerror) {
  const auto response = ask("example.com", RRType::MX);
  EXPECT_EQ(response.header.rcode, RCode::NOERROR);
  EXPECT_TRUE(response.answer.empty());
  EXPECT_EQ(count_type(response.authority, RRType::SOA), 1u);
}

TEST_F(AuthServerTest, OutOfBailiwickIsRefused) {
  const auto response = ask("other.org", RRType::A);
  EXPECT_EQ(response.header.rcode, RCode::REFUSED);
}

TEST_F(AuthServerTest, EdnsIsEchoed) {
  const auto response = ask("example.com", RRType::A);
  const auto edns = ede::edns::get_edns(response);
  ASSERT_TRUE(edns.has_value());
  EXPECT_TRUE(edns->dnssec_ok);
}

TEST_F(AuthServerTest, DenyAllAclRefusesEveryone) {
  server_.config().acl = QueryAcl::DenyAll;
  EXPECT_EQ(ask("example.com", RRType::A).header.rcode, RCode::REFUSED);
}

TEST_F(AuthServerTest, LocalhostAclAdmitsOnlyLoopback) {
  server_.config().acl = QueryAcl::LocalhostOnly;
  EXPECT_EQ(ask("example.com", RRType::A).header.rcode, RCode::REFUSED);
  EXPECT_EQ(ask("example.com", RRType::A, true, NodeAddress::of("127.0.0.1"))
                .header.rcode,
            RCode::NOERROR);
}

TEST_F(AuthServerTest, FixedRcodeShortCircuits) {
  server_.config().fixed_rcode = RCode::NOTAUTH;
  const auto response = ask("example.com", RRType::A);
  EXPECT_EQ(response.header.rcode, RCode::NOTAUTH);
  EXPECT_TRUE(response.answer.empty());
}

TEST_F(AuthServerTest, QuestionMangling) {
  server_.config().mangle_question = true;
  const auto response = ask("example.com", RRType::A);
  EXPECT_NE(response.question.front().qname, Name::of("example.com"));
}

TEST_F(AuthServerTest, EdnsUnawareServerOmitsOpt) {
  server_.config().edns_aware = false;
  const auto response = ask("example.com", RRType::A);
  EXPECT_EQ(response.find_opt(), nullptr);
}

TEST_F(AuthServerTest, FormerrOnEmptyQuestion) {
  Message query;
  query.header.id = 5;
  const auto response =
      server_.handle(query, PacketContext{NodeAddress::of("192.0.2.1")});
  EXPECT_EQ(response.header.rcode, RCode::FORMERR);
}

TEST_F(AuthServerTest, EndpointParsesWireAndResponds) {
  Message query = make_query(77, Name::of("example.com"), RRType::A);
  const auto endpoint = server_.endpoint();
  const auto wire = endpoint(query.serialize(),
                             PacketContext{NodeAddress::of("192.0.2.1")});
  ASSERT_TRUE(wire.has_value());
  const auto response = Message::parse(*wire);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().header.id, 77);
  EXPECT_EQ(response.value().header.rcode, RCode::NOERROR);
}

TEST_F(AuthServerTest, EndpointDropsGarbage) {
  const ede::crypto::Bytes garbage = {1, 2, 3};
  EXPECT_FALSE(server_.endpoint()(garbage,
                                  PacketContext{NodeAddress::of("192.0.2.1")})
                   .has_value());
}

}  // namespace
