// Domain-name tests: parsing, escapes, size limits, canonical ordering
// (RFC 4034 §6.1) and case-insensitive semantics (RFC 4343).
#include <gtest/gtest.h>

#include "dnscore/name.hpp"

namespace {

using ede::dns::Name;

TEST(Name, RootParsesAndPrints) {
  const Name root = Name::of(".");
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.label_count(), 0u);
  EXPECT_EQ(root.to_string(), ".");
  EXPECT_EQ(root.wire_length(), 1u);
}

TEST(Name, SimpleNameRoundTrips) {
  const Name name = Name::of("www.example.com");
  EXPECT_EQ(name.label_count(), 3u);
  EXPECT_EQ(name.to_string(), "www.example.com.");
  EXPECT_EQ(name.wire_length(), 1 + 4 + 8 + 4);  // labels + lengths + root
}

TEST(Name, TrailingDotIsOptional) {
  EXPECT_EQ(Name::of("example.com"), Name::of("example.com."));
}

TEST(Name, ComparisonIsCaseInsensitive) {
  EXPECT_EQ(Name::of("WWW.Example.COM"), Name::of("www.example.com"));
  EXPECT_EQ(Name::of("WWW.Example.COM").hash(),
            Name::of("www.example.com").hash());
}

TEST(Name, CasePreservedInPresentation) {
  EXPECT_EQ(Name::of("WwW.ExAmPle.com").to_string(), "WwW.ExAmPle.com.");
}

TEST(Name, RejectsEmptyAndBadLabels) {
  EXPECT_FALSE(Name::parse("").ok());
  EXPECT_FALSE(Name::parse("a..b").ok());
  EXPECT_FALSE(Name::parse(".leading").ok());
}

TEST(Name, RejectsOversizedLabel) {
  const std::string label64(64, 'a');
  EXPECT_FALSE(Name::parse(label64 + ".com").ok());
  const std::string label63(63, 'a');
  EXPECT_TRUE(Name::parse(label63 + ".com").ok());
}

TEST(Name, RejectsOversizedName) {
  // Four 63-byte labels => 4*64 + 1 = 257 > 255.
  const std::string label(63, 'a');
  const std::string too_long = label + "." + label + "." + label + "." + label;
  EXPECT_FALSE(Name::parse(too_long).ok());
}

TEST(Name, DecimalEscapes) {
  const Name name = Name::of("a\\046b.example");  // "a.b" as one label
  EXPECT_EQ(name.label_count(), 2u);
  EXPECT_EQ(name.labels().front(), "a.b");
  EXPECT_EQ(name.to_string(), "a\\.b.example.");
}

TEST(Name, CharacterEscapes) {
  const Name name = Name::of("a\\.b.c");
  EXPECT_EQ(name.label_count(), 2u);
  EXPECT_EQ(name.labels().front(), "a.b");
}

TEST(Name, ParentWalksTowardsRoot) {
  Name name = Name::of("a.b.c");
  name = name.parent();
  EXPECT_EQ(name, Name::of("b.c"));
  name = name.parent();
  EXPECT_EQ(name, Name::of("c"));
  name = name.parent();
  EXPECT_TRUE(name.is_root());
  EXPECT_THROW(name.parent(), std::logic_error);
}

TEST(Name, PrefixedPrepends) {
  EXPECT_EQ(Name::of("example.com").prefixed("www").take(),
            Name::of("www.example.com"));
}

TEST(Name, SubdomainChecks) {
  const Name root;
  const Name com = Name::of("com");
  const Name example = Name::of("example.com");
  EXPECT_TRUE(example.is_subdomain_of(root));
  EXPECT_TRUE(example.is_subdomain_of(com));
  EXPECT_TRUE(example.is_subdomain_of(example));
  EXPECT_FALSE(com.is_subdomain_of(example));
  EXPECT_FALSE(Name::of("notexample.com").is_subdomain_of(example));
  EXPECT_TRUE(Name::of("EXAMPLE.COM").is_subdomain_of(example));
}

// RFC 4034 §6.1 gives the canonical ordering of an example zone; the same
// relative order must fall out of canonical_compare.
TEST(Name, CanonicalOrderMatchesRfc4034Example) {
  const std::vector<std::string> ordered = {
      "example",      "a.example",         "yljkjljk.a.example",
      "Z.a.example",  "zABC.a.EXAMPLE",    "z.example",
      "\\001.z.example", "*.z.example",    "\\200.z.example",
  };
  for (std::size_t i = 0; i + 1 < ordered.size(); ++i) {
    const Name a = Name::of(ordered[i]);
    const Name b = Name::of(ordered[i + 1]);
    EXPECT_EQ(a.canonical_compare(b), std::strong_ordering::less)
        << ordered[i] << " should sort before " << ordered[i + 1];
    EXPECT_EQ(b.canonical_compare(a), std::strong_ordering::greater);
  }
}

TEST(Name, CanonicalCompareEqualIgnoresCase) {
  EXPECT_EQ(Name::of("ExAmPlE.CoM").canonical_compare(Name::of("example.com")),
            std::strong_ordering::equal);
}

TEST(Name, CanonicalWireLowercases) {
  const auto wire = Name::of("WwW.CoM").canonical_wire();
  const ede::crypto::Bytes expected = {3, 'w', 'w', 'w', 3, 'c', 'o', 'm', 0};
  EXPECT_EQ(wire, expected);
}

TEST(Name, WirePreservesCase) {
  const auto wire = Name::of("Ab").wire();
  const ede::crypto::Bytes expected = {2, 'A', 'b', 0};
  EXPECT_EQ(wire, expected);
}

TEST(Name, NonPrintablePresentationUsesDecimalEscapes) {
  const Name name = Name::from_labels({std::string("\x01\x02", 2)}).take();
  EXPECT_EQ(name.to_string(), "\\001\\002.");
}

}  // namespace
