// Domain-name tests: parsing, escapes, size limits, canonical ordering
// (RFC 4034 §6.1) and case-insensitive semantics (RFC 4343).
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "dnscore/name.hpp"

namespace {

using ede::dns::Name;

TEST(Name, RootParsesAndPrints) {
  const Name root = Name::of(".");
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.label_count(), 0u);
  EXPECT_EQ(root.to_string(), ".");
  EXPECT_EQ(root.wire_length(), 1u);
}

TEST(Name, SimpleNameRoundTrips) {
  const Name name = Name::of("www.example.com");
  EXPECT_EQ(name.label_count(), 3u);
  EXPECT_EQ(name.to_string(), "www.example.com.");
  EXPECT_EQ(name.wire_length(), 1 + 4 + 8 + 4);  // labels + lengths + root
}

TEST(Name, TrailingDotIsOptional) {
  EXPECT_EQ(Name::of("example.com"), Name::of("example.com."));
}

TEST(Name, ComparisonIsCaseInsensitive) {
  EXPECT_EQ(Name::of("WWW.Example.COM"), Name::of("www.example.com"));
  EXPECT_EQ(Name::of("WWW.Example.COM").hash(),
            Name::of("www.example.com").hash());
}

TEST(Name, CasePreservedInPresentation) {
  EXPECT_EQ(Name::of("WwW.ExAmPle.com").to_string(), "WwW.ExAmPle.com.");
}

TEST(Name, RejectsEmptyAndBadLabels) {
  EXPECT_FALSE(Name::parse("").ok());
  EXPECT_FALSE(Name::parse("a..b").ok());
  EXPECT_FALSE(Name::parse(".leading").ok());
}

TEST(Name, RejectsOversizedLabel) {
  const std::string label64(64, 'a');
  EXPECT_FALSE(Name::parse(label64 + ".com").ok());
  const std::string label63(63, 'a');
  EXPECT_TRUE(Name::parse(label63 + ".com").ok());
}

TEST(Name, RejectsOversizedName) {
  // Four 63-byte labels => 4*64 + 1 = 257 > 255.
  const std::string label(63, 'a');
  const std::string too_long = label + "." + label + "." + label + "." + label;
  EXPECT_FALSE(Name::parse(too_long).ok());
}

TEST(Name, DecimalEscapes) {
  const Name name = Name::of("a\\046b.example");  // "a.b" as one label
  EXPECT_EQ(name.label_count(), 2u);
  EXPECT_EQ(name.labels().front(), "a.b");
  EXPECT_EQ(name.to_string(), "a\\.b.example.");
}

TEST(Name, CharacterEscapes) {
  const Name name = Name::of("a\\.b.c");
  EXPECT_EQ(name.label_count(), 2u);
  EXPECT_EQ(name.labels().front(), "a.b");
}

TEST(Name, ParentWalksTowardsRoot) {
  Name name = Name::of("a.b.c");
  name = name.parent();
  EXPECT_EQ(name, Name::of("b.c"));
  name = name.parent();
  EXPECT_EQ(name, Name::of("c"));
  name = name.parent();
  EXPECT_TRUE(name.is_root());
  EXPECT_THROW(name.parent(), std::logic_error);
}

TEST(Name, PrefixedPrepends) {
  EXPECT_EQ(Name::of("example.com").prefixed("www").take(),
            Name::of("www.example.com"));
}

TEST(Name, SubdomainChecks) {
  const Name root;
  const Name com = Name::of("com");
  const Name example = Name::of("example.com");
  EXPECT_TRUE(example.is_subdomain_of(root));
  EXPECT_TRUE(example.is_subdomain_of(com));
  EXPECT_TRUE(example.is_subdomain_of(example));
  EXPECT_FALSE(com.is_subdomain_of(example));
  EXPECT_FALSE(Name::of("notexample.com").is_subdomain_of(example));
  EXPECT_TRUE(Name::of("EXAMPLE.COM").is_subdomain_of(example));
}

// RFC 4034 §6.1 gives the canonical ordering of an example zone; the same
// relative order must fall out of canonical_compare.
TEST(Name, CanonicalOrderMatchesRfc4034Example) {
  const std::vector<std::string> ordered = {
      "example",      "a.example",         "yljkjljk.a.example",
      "Z.a.example",  "zABC.a.EXAMPLE",    "z.example",
      "\\001.z.example", "*.z.example",    "\\200.z.example",
  };
  for (std::size_t i = 0; i + 1 < ordered.size(); ++i) {
    const Name a = Name::of(ordered[i]);
    const Name b = Name::of(ordered[i + 1]);
    EXPECT_EQ(a.canonical_compare(b), std::strong_ordering::less)
        << ordered[i] << " should sort before " << ordered[i + 1];
    EXPECT_EQ(b.canonical_compare(a), std::strong_ordering::greater);
  }
}

TEST(Name, CanonicalCompareEqualIgnoresCase) {
  EXPECT_EQ(Name::of("ExAmPlE.CoM").canonical_compare(Name::of("example.com")),
            std::strong_ordering::equal);
}

TEST(Name, CanonicalWireLowercases) {
  const auto wire = Name::of("WwW.CoM").canonical_wire();
  const ede::crypto::Bytes expected = {3, 'w', 'w', 'w', 3, 'c', 'o', 'm', 0};
  EXPECT_EQ(wire, expected);
}

TEST(Name, WirePreservesCase) {
  const auto wire = Name::of("Ab").wire();
  const ede::crypto::Bytes expected = {2, 'A', 'b', 0};
  EXPECT_EQ(wire, expected);
}

TEST(Name, NonPrintablePresentationUsesDecimalEscapes) {
  const Name name = Name::from_labels({std::string("\x01\x02", 2)}).take();
  EXPECT_EQ(name.to_string(), "\\001\\002.");
}

// --- property-style round trips for the flat representation ---------------

// Deterministic xorshift so a failing iteration reproduces exactly.
std::uint32_t next_rand(std::uint32_t& s) {
  s ^= s << 13;
  s ^= s >> 17;
  s ^= s << 5;
  return s;
}

TEST(NameProperty, PresentationRoundTripIsByteExact) {
  // Random labels over the full octet range (dots, backslashes, NULs,
  // high bytes): parse(to_string()) must reproduce the identical label
  // bytes, not merely an RFC 4343-equal name.
  std::uint32_t s = 0x2458fd1u;
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<std::string> labels(1 + next_rand(s) % 5);
    for (auto& label : labels) {
      label.resize(1 + next_rand(s) % 16);
      for (auto& c : label) c = static_cast<char>(next_rand(s) & 0xff);
    }
    const auto built = Name::from_labels(std::span<const std::string>(labels));
    ASSERT_TRUE(built.ok()) << "iter " << iter;
    const Name& name = built.value();

    const auto reparsed = Name::parse(name.to_string());
    ASSERT_TRUE(reparsed.ok()) << name.to_string();
    ASSERT_EQ(reparsed.value().size_bytes(), name.size_bytes());
    EXPECT_EQ(std::memcmp(reparsed.value().data(), name.data(),
                          name.size_bytes()),
              0)
        << "presentation round trip changed label bytes: "
        << name.to_string();

    // The label view must walk back the exact labels that built the name.
    std::size_t i = 0;
    for (const auto label : name.labels()) {
      EXPECT_EQ(label, labels[i++]);
    }
    EXPECT_EQ(i, labels.size());
  }
}

TEST(NameProperty, CaseFlipsPreserveEqualityHashAndOrder) {
  std::uint32_t s = 0x7c83a91u;
  for (int iter = 0; iter < 300; ++iter) {
    std::string text;
    const int nlabels = 1 + next_rand(s) % 4;
    for (int l = 0; l < nlabels; ++l) {
      if (l > 0) text += '.';
      const int len = 1 + next_rand(s) % 10;
      for (int j = 0; j < len; ++j)
        text += static_cast<char>('a' + next_rand(s) % 26);
    }
    const Name lower = Name::of(text);
    std::string flipped_text = text;
    for (auto& c : flipped_text) {
      if (c >= 'a' && c <= 'z' && (next_rand(s) & 1))
        c = static_cast<char>(c - 'a' + 'A');
    }
    const Name flipped = Name::of(flipped_text);

    EXPECT_TRUE(lower.equals(flipped)) << text << " vs " << flipped_text;
    EXPECT_EQ(lower.hash(), flipped.hash()) << text << " vs " << flipped_text;
    EXPECT_EQ(lower.canonical_compare(flipped), std::strong_ordering::equal);
    // lowered() must be a fixpoint equal to both.
    EXPECT_EQ(flipped.lowered().to_string(), lower.lowered().to_string());
  }
}

TEST(NameProperty, MaxLabelsAndMaxOctetsAreExact) {
  // 127 single-octet labels occupy 2 * 127 = 254 octets + the root octet:
  // exactly the RFC 1035 255-octet ceiling. One more label must fail.
  const std::vector<std::string> at_limit(127, "a");
  const auto ok = Name::from_labels(std::span<const std::string>(at_limit));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().label_count(), 127u);
  EXPECT_EQ(ok.value().wire_length(), Name::kMaxWireLength);
  EXPECT_EQ(ok.value().label_offsets().count, 127u);

  const std::vector<std::string> over(128, "a");
  EXPECT_FALSE(Name::from_labels(std::span<const std::string>(over)).ok());

  // 3 * 63 + 61 = 250 label octets + 4 length octets + root = 255: ok.
  const std::string l63(63, 'x');
  const auto fat = Name::parse(l63 + "." + l63 + "." + l63 + "." +
                               std::string(61, 'x'));
  ASSERT_TRUE(fat.ok());
  EXPECT_EQ(fat.value().wire_length(), Name::kMaxWireLength);
  EXPECT_FALSE(
      Name::parse(l63 + "." + l63 + "." + l63 + "." + std::string(62, 'x'))
          .ok());
}

TEST(NameProperty, InlineToHeapBoundaryBehavesIdentically) {
  // kInlineCapacity bytes is the last inline name; one more octet moves
  // storage to the heap. Copy/move/compare must not care.
  const std::string inline_label(Name::kInlineCapacity - 1, 'q');  // size 62
  const std::string heap_label(Name::kInlineCapacity, 'q');        // size 63
  for (const auto& label : {inline_label, heap_label}) {
    const auto built = Name::from_labels({std::string_view(label)});
    ASSERT_TRUE(built.ok());
    const Name& name = built.value();
    const Name copy = name;              // copy ctor
    Name moved_from = name;
    const Name moved = std::move(moved_from);  // move ctor
    EXPECT_TRUE(copy.equals(name));
    EXPECT_TRUE(moved.equals(name));
    EXPECT_EQ(copy.to_string(), name.to_string());
    EXPECT_EQ(copy.hash(), name.hash());
    Name assigned;
    assigned = copy;                     // copy assign across storage kinds
    EXPECT_TRUE(assigned.equals(name));
  }
}

TEST(NameProperty, EscapeFormsParseToSameName) {
  // \X and \ddd spellings of the same octet are the same name.
  EXPECT_EQ(Name::of("a\\.b.c"), Name::of("a\\046b.c"));
  EXPECT_EQ(Name::of("\\\\.com"), Name::of("\\092.com"));
  // A backslash-digit sequence must be a full \ddd triple.
  EXPECT_FALSE(Name::parse("\\1a.example").ok());
  EXPECT_FALSE(Name::parse("ab\\30").ok());
  EXPECT_FALSE(Name::parse("\\300.example").ok());  // 300 > 255
}

}  // namespace
