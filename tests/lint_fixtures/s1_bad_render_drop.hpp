// ede-lint-fixture: src/stats/bad_render_drop.hpp
// Known-bad S1: ghost_evictions is summed in merge but surfaced by no
// report renderer — counted, never seen. (The companion renderer fixture
// src/stats/tally_report.cpp deliberately leaves it out.)
#pragma once

#include <cstdint>

namespace ede::stats_fix {

struct CacheTally {
  std::uint64_t probe_hits = 0;
  std::uint64_t probe_misses = 0;
  std::uint64_t ghost_evictions = 0;                       // S1: line 14

  void merge(const CacheTally& other) {
    probe_hits += other.probe_hits;
    probe_misses += other.probe_misses;
    ghost_evictions += other.ghost_evictions;
  }
};

}  // namespace ede::stats_fix
