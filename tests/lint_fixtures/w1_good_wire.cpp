// ede-lint-fixture: src/dnscore/wire.cpp
// Known-good W1: the same operations are legal inside the wire layer —
// this is the one place allowed to touch raw network bytes.
#include <cstdint>
#include <cstring>

namespace ede::dns {

std::uint16_t wire_peek_qid(const std::uint8_t* packet) {
  std::uint16_t qid = 0;
  std::memcpy(&qid, packet, sizeof(qid));
  return qid;
}

}  // namespace ede::dns
