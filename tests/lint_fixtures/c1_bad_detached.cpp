// ede-lint-fixture: src/async/bad_detached.cpp
// Known-bad C1: a dropped sim::Task return (the coroutine never runs) and
// a Task local that is never awaited, started, or stored.
#include "simnet/sched.hpp"

namespace ede::async_fix {

sim::Task<void> kick(int step);

void fire_and_forget(int steps) {
  kick(steps);                                             // C1: line 11
  sim::Task<void> pending = kick(steps + 1);               // C1: line 12
}

}  // namespace ede::async_fix
