// ede-lint-fixture: src/scan/fixture_report.cpp
// Known-bad D1: a report emitter iterating unordered containers directly —
// one declared in an included project header, one declared locally.
#include <string>
#include <unordered_map>

#include "scan/fixture_world.hpp"

namespace ede::scan {

std::string render(const FixtureWorld& world) {
  std::string out;
  for (const auto& [name, count] : world.tallies()) {      // D1: line 13
    out += name + "=" + std::to_string(count) + "\n";
  }
  std::unordered_map<std::string, int> local_counts;
  for (const auto& [name, count] : local_counts) {         // D1: line 17
    out += name + ":" + std::to_string(count) + "\n";
  }
  return out;
}

}  // namespace ede::scan
