// ede-lint-fixture: src/scan/fixture_report_good.cpp
// Known-good D1: the same emitter routed through util::sorted_items, plus
// iteration over an ordered std::map, which is always legal.
#include <map>
#include <string>
#include <unordered_map>

#include "dnscore/sorted.hpp"
#include "scan/fixture_world.hpp"

namespace ede::scan {

std::string render_sorted(const FixtureWorld& world) {
  std::string out;
  for (const auto& [name, count] : ede::util::sorted_items(world.tallies())) {
    out += *name + "=" + std::to_string(*count) + "\n";
  }
  std::map<std::string, int> ordered_counts;
  for (const auto& [name, count] : ordered_counts) {
    out += name + ":" + std::to_string(count) + "\n";
  }
  return out;
}

}  // namespace ede::scan
