// ede-lint-fixture: src/async/bad_lambda.cpp
// Known-bad C1: a by-reference lambda invoked after a suspension point —
// its captures may dangle across the co_await.
#include "simnet/sched.hpp"

namespace ede::async_fix {

sim::Task<int> probe_once(int delay_ms);

sim::Task<int> retry_with_note(int budget) {
  int failures = 0;
  auto note_failure = [&] { ++failures; };                 // C1: line 12
  const int got = co_await probe_once(budget);
  if (got == 0) note_failure();
  co_return failures;
}

}  // namespace ede::async_fix
