// ede-lint-fixture: src/async/good_value.cpp
// Known-good C1: by-value parameters are safe to read after suspensions,
// and a Task local that is co_awaited is neither detached nor leaked.
#include <string>

#include "simnet/sched.hpp"

namespace ede::async_fix {

sim::Task<int> probe_once(int delay_ms);

sim::Task<int> sum_probes(std::string label, int rounds) {
  int total = 0;
  for (int i = 0; i < rounds; ++i) total += co_await probe_once(i);
  total += static_cast<int>(label.size());
  co_return total;
}

sim::Task<int> wrapped(int rounds) {
  sim::Task<int> inner = sum_probes("w", rounds);
  co_return co_await inner;
}

}  // namespace ede::async_fix
