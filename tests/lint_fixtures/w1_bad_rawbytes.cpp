// ede-lint-fixture: src/dnscore/bad_rawbytes.cpp
// Known-bad W1: raw byte copies and type punning over a network buffer
// outside wire.{hpp,cpp}.
#include <cstdint>
#include <cstring>

namespace ede::dns {

std::uint16_t peek_qid(const std::uint8_t* packet) {
  std::uint16_t qid = 0;
  std::memcpy(&qid, packet, sizeof(qid));                  // W1: line 11
  return qid;
}

const char* as_chars(const std::uint8_t* packet) {
  return reinterpret_cast<const char*>(packet);            // W1: line 16
}

}  // namespace ede::dns
