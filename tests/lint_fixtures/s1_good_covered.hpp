// ede-lint-fixture: src/stats/good_covered.hpp
// Known-good S1: every counter is folded in merge AND surfaced by the
// companion renderer fixture src/stats/tally_report.cpp.
#pragma once

#include <cstdint>

namespace ede::stats_fix {

struct RouteTally {
  std::uint64_t routes_ok = 0;
  std::uint64_t routes_failed = 0;

  void merge(const RouteTally& other) {
    routes_ok += other.routes_ok;
    routes_failed += other.routes_failed;
  }
};

}  // namespace ede::stats_fix
