// ede-lint-fixture: src/stats/good_delegate.hpp
// Known-good S1: a nested stats struct whose outer merge delegates to the
// inner one's merge — both levels fully folded and fully rendered (see
// src/stats/tally_report.cpp).
#pragma once

#include <cstdint>

namespace ede::stats_fix {

struct LinkCounters {
  std::uint64_t up_events = 0;
  std::uint64_t down_events = 0;

  void merge(const LinkCounters& other) {
    up_events += other.up_events;
    down_events += other.down_events;
  }
};

struct NodeTally {
  std::uint64_t node_visits = 0;
  LinkCounters links;

  void merge(const NodeTally& other) {
    node_visits += other.node_visits;
    links.merge(other.links);
  }
};

}  // namespace ede::stats_fix
