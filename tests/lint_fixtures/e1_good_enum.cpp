// ede-lint-fixture: src/resolver/good_ede_enum.cpp
// Known-good E1: INFO-CODEs named through the registry enum; casting a
// *parsed wire value* (not a literal) is also legal.
#include <cstdint>

#include "edns/ede.hpp"

namespace ede::resolver {

edns::ExtendedError stale() {
  return edns::ExtendedError{edns::EdeCode::StaleAnswer, "expired 32s ago"};
}

edns::EdeCode from_wire(std::uint16_t info_code) {
  return static_cast<edns::EdeCode>(info_code);
}

}  // namespace ede::resolver
