// ede-lint-fixture: src/resolver/bad_ede_literal.cpp
// Known-bad E1: EDE INFO-CODEs spelled as integer literals instead of
// registry enumerators.
#include <cstdint>

#include "edns/ede.hpp"

namespace ede::resolver {

edns::EdeCode from_paren() {
  return edns::EdeCode(7);                                 // E1: line 11
}

edns::EdeCode from_cast() {
  return static_cast<edns::EdeCode>(9);                    // E1: line 15
}

edns::ExtendedError lame() {
  return edns::ExtendedError{edns::EdeCode{22}, "lame"};   // E1: line 19
}

}  // namespace ede::resolver
