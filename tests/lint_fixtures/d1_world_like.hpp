// ede-lint-fixture: src/scan/fixture_world.hpp
// Support header for the sorted-emission fixtures: declares the unordered
// members/accessors the emitter fixtures iterate. Clean on its own.
#include <string>
#include <unordered_map>

namespace ede::scan {

class FixtureWorld {
 public:
  const std::unordered_map<std::string, int>& tallies() const {
    return tallies_;
  }

 private:
  std::unordered_map<std::string, int> tallies_;
};

}  // namespace ede::scan
