// ede-lint-fixture: src/stats/tally_report.cpp
// Known-good renderer companion for the S1 fixtures: surfaces every
// counter of ProbeTally, CacheTally, RouteTally, LinkCounters and
// NodeTally — except CacheTally::ghost_evictions, which is
// bad_render_drop's bait and must stay unrendered here.
#include <sstream>
#include <string>

#include "stats/bad_merge_drop.hpp"
#include "stats/bad_render_drop.hpp"
#include "stats/good_covered.hpp"
#include "stats/good_delegate.hpp"

namespace ede::stats_fix {

std::string render_tallies(const ProbeTally& probes, const CacheTally& cache,
                           const RouteTally& routes, const NodeTally& node) {
  std::ostringstream out;
  out << "probes " << probes.sent_total << "/" << probes.lost_total
      << " over " << probes.wave_count << " waves\n";
  out << "cache " << cache.probe_hits << " hits, " << cache.probe_misses
      << " misses\n";
  out << "routes " << routes.routes_ok << " ok, " << routes.routes_failed
      << " failed\n";
  out << "node " << node.node_visits << " visits, links "
      << node.links.up_events << " up / " << node.links.down_events
      << " down\n";
  return out.str();
}

}  // namespace ede::stats_fix
