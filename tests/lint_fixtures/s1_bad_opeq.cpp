// ede-lint-fixture: src/stats/opeq_export.cpp
// Known-bad S1: operator+= counts as the struct's merge, and it drops
// waves_skipped. Self-contained renderer file like free_merge_export.
#include <cstdint>
#include <sstream>
#include <string>

namespace ede::stats_fix {

struct WaveAgg {
  std::uint64_t waves_run = 0;
  std::uint64_t waves_skipped = 0;                         // S1: line 12

  WaveAgg& operator+=(const WaveAgg& rhs) {
    waves_run += rhs.waves_run;
    return *this;
  }
};

std::string export_waves(const WaveAgg& agg) {
  std::ostringstream out;
  out << agg.waves_run << " " << agg.waves_skipped;
  return out.str();
}

}  // namespace ede::stats_fix
