// ede-lint-fixture: src/edns/ede.hpp
// Known-bad E1: a drifted registry enum. Code 4 carries the wrong name
// (the IANA registry says ForgedAnswer), code 24 is missing entirely, and
// 99 was never registered — all reported against the enum head below.
#include <cstdint>

namespace ede::edns {

enum class EdeCode : std::uint16_t {                       // E1: line 9
  Other = 0,
  UnsupportedDnskeyAlgorithm = 1,
  UnsupportedDsDigestType = 2,
  StaleAnswer = 3,
  ForgedAnswerTypo = 4,
  DnssecIndeterminate = 5,
  DnssecBogus = 6,
  SignatureExpired = 7,
  SignatureNotYetValid = 8,
  DnskeyMissing = 9,
  RrsigsMissing = 10,
  NoZoneKeyBitSet = 11,
  NsecMissing = 12,
  CachedError = 13,
  NotReady = 14,
  Blocked = 15,
  Censored = 16,
  Filtered = 17,
  Prohibited = 18,
  StaleNxdomainAnswer = 19,
  NotAuthoritative = 20,
  NotSupported = 21,
  NoReachableAuthority = 22,
  NetworkError = 23,
  SignatureExpiredBeforeValid = 25,
  TooEarly = 26,
  UnsupportedNsec3IterValue = 27,
  UnableToConformToPolicy = 28,
  Synthesized = 29,
  MadeUp = 99,
};

}  // namespace ede::edns
