// ede-lint-fixture: src/serve/fixture_sketch.cpp
// Known-bad D1: src/serve/ is emitter territory wholesale (its stats feed
// byte-stable serving reports), so iterating an unordered container
// without util::sorted_items flags even outside a report_* file.
#include <string>
#include <unordered_map>

namespace ede::serve {

std::string render_hot_names() {
  std::unordered_map<std::string, unsigned> hot;
  hot["a.example"] = 3;
  std::string out;
  for (const auto& [name, count] : hot) {                  // D1: line 14
    out += name + "=" + std::to_string(count) + "\n";
  }
  return out;
}

}  // namespace ede::serve
