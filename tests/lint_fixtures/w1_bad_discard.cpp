// ede-lint-fixture: src/resolver/bad_discard.cpp
// Known-bad W1: a Result-returning read whose error path is thrown away
// as a bare expression-statement.
#include <cstddef>

namespace ede::dns {
template <typename T>
class Result;

struct FakeReader {
  Result<void> seek_checked(std::size_t offset);
};

void skip_header(FakeReader& reader) {
  reader.seek_checked(12);                                 // W1: line 15
}

bool skip_header_checked(FakeReader& reader) {
  auto status = reader.seek_checked(12);  // bound: fine
  return true;
}

}  // namespace ede::dns
