// ede-lint-fixture: src/scan/bad_header.hpp
// Known-bad H1: `using namespace` at header scope, and spelling a key
// project type without directly including its defining header.
#include <string>

using namespace std;                                       // H1: line 6

namespace ede::scan {

struct Probe {
  ede::dns::WireReader* reader = nullptr;                  // H1: line 11
  string label;
};

}  // namespace ede::scan
