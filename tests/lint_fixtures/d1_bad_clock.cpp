// ede-lint-fixture: src/scan/bad_clock.cpp
// Known-bad D1: every ambient-nondeterminism source the rule bans.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <random>

namespace ede::scan {

struct Name;

unsigned draw_seed() {
  std::random_device rd;                                   // D1: line 14
  return rd();
}

long now_wall() {
  const auto t = std::chrono::steady_clock::now();         // D1: line 19
  (void)t;
  return time(nullptr);                                    // D1: line 21
}

int jitter() { return rand() % 7; }                        // D1: line 24

std::size_t order_key(const Name* name) {
  return std::hash<const Name*>{}(name);                   // D1: line 27
}

}  // namespace ede::scan
