// ede-lint-fixture: src/async/good_ref_before_await.cpp
// Known-good C1: a reference parameter and a by-reference lambda are both
// fine when every use happens before the first suspension point.
#include <string>

#include "simnet/sched.hpp"

namespace ede::async_fix {

sim::Task<int> probe_once(int delay_ms);

sim::Task<int> hash_then_wait(const std::string& seed_text) {
  const int seed = static_cast<int>(seed_text.size());
  const int got = co_await probe_once(seed);
  co_return got;
}

sim::Task<int> note_then_wait(int base) {
  int count = 0;
  auto bump = [&] { ++count; };
  bump();
  const int got = co_await probe_once(base);
  co_return got + count;
}

}  // namespace ede::async_fix
