// ede-lint-fixture: src/async/bad_view_param.cpp
// Known-bad C1: a string_view parameter read after the first co_await —
// the view points into storage the caller may have freed.
#include <string_view>

#include "simnet/sched.hpp"

namespace ede::async_fix {

sim::Task<int> probe_once(int delay_ms);

sim::Task<bool> lookup_name(std::string_view qname) {      // C1: line 12
  const int rc = co_await probe_once(1);
  co_return rc > 0 && !qname.empty();
}

}  // namespace ede::async_fix
