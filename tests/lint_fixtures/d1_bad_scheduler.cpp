// ede-lint-fixture: src/simnet/bad_scheduler.cpp
// Known-bad D1: event-loop hygiene — OS-thread sleeps and address-keyed
// coroutine ordering, the two ways an async core goes nondeterministic.
#include <coroutine>
#include <map>
#include <thread>

namespace ede::sim {

void nap_on_the_os_thread() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // D1 x2
}

void nap_until_wall_deadline(std::chrono::steady_clock::time_point t) {
  std::this_thread::sleep_until(t);  // D1 x2 (steady_clock: line 14)
}

struct BadScheduler {
  // Address-keyed parking: replays differently under ASLR.
  std::map<void*, int> parked;

  void park(std::coroutine_handle<> handle) {
    parked[handle.address()] = 1;  // D1: line 23
  }
};

}  // namespace ede::sim
