// ede-lint-fixture: src/stats/free_merge_export.cpp
// Known-bad S1: a struct aggregated by a free merge() that drops
// skipped_rows. Self-contained: the *_export basename makes this file a
// renderer, and export_shard surfaces every field — only the merge gap
// fires.
#include <cstdint>
#include <sstream>
#include <string>

namespace ede::stats_fix {

struct ShardAgg {
  std::uint64_t rows_in = 0;
  std::uint64_t rows_out = 0;
  std::uint64_t skipped_rows = 0;                          // S1: line 15
};

void merge(ShardAgg& into, const ShardAgg& from) {
  into.rows_in += from.rows_in;
  into.rows_out += from.rows_out;
}

std::string export_shard(const ShardAgg& agg) {
  std::ostringstream out;
  out << agg.rows_in << " " << agg.rows_out << " " << agg.skipped_rows;
  return out.str();
}

}  // namespace ede::stats_fix
