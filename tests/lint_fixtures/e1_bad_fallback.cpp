// ede-lint-fixture: src/resolver/bad_edns_fallback.cpp
// Known-bad E1: the RFC 6891 probe-and-fallback path emitting its
// terminal EDEs as integer literals. The real resolver names the
// registry enumerators (NoReachableAuthority, NetworkError, InvalidData);
// a literal here would drift silently if the registry snapshot moved.
#include <cstdint>

#include "edns/ede.hpp"

namespace ede::resolver {

struct Finding {
  edns::ExtendedError error;
};

Finding edns_dance_exhausted() {
  // Every server abandoned after the plain-DNS retry: "no reachable
  // authority" spelled numerically.
  return {edns::ExtendedError{edns::EdeCode(22), "edns dance"}};  // E1: 19
}

Finding edns_timeout_terminal() {
  return {edns::ExtendedError{
      static_cast<edns::EdeCode>(23), "udp timeout"}};            // E1: 23
}

Finding garbled_opt_finding() {
  return {edns::ExtendedError{edns::EdeCode{24}, "garbled OPT"}}; // E1: 27
}

}  // namespace ede::resolver
