// ede-lint-fixture: src/scan/good_includes.cpp
// Known-good H1: spells curated project types with their defining headers
// directly included; `using namespace` is fine in a .cpp.
#include "dnscore/wire.hpp"
#include "edns/ede.hpp"

using namespace ede::dns;

namespace ede::scan {

int peek(WireReader& reader) {
  (void)reader;
  return static_cast<int>(edns::EdeCode::StaleAnswer);
}

}  // namespace ede::scan
