// ede-lint-fixture: src/async/bad_ref_after_await.cpp
// Known-bad C1: a reference parameter written after the coroutine's
// suspension loop — the caller's frame may already be gone by then.
#include <cstdint>

#include "simnet/sched.hpp"

namespace ede::async_fix {

struct Tally {
  int probes = 0;
};

sim::Task<int> probe_once(int delay_ms);

sim::Task<int> count_probes(Tally& tally, int rounds) {    // C1: line 16
  int total = 0;
  for (int i = 0; i < rounds; ++i) {
    total += co_await probe_once(i);
  }
  tally.probes = total;
  co_return total;
}

}  // namespace ede::async_fix
