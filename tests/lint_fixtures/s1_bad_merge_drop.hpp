// ede-lint-fixture: src/stats/bad_merge_drop.hpp
// Known-bad S1: wave_count is never folded in merge — an N-shard
// aggregation silently drops it. (Rendering is covered by the companion
// renderer fixture src/stats/tally_report.cpp.)
#pragma once

#include <cstdint>

namespace ede::stats_fix {

struct ProbeTally {
  std::uint64_t sent_total = 0;
  std::uint64_t lost_total = 0;
  std::uint64_t wave_count = 0;                            // S1: line 14

  void merge(const ProbeTally& other) {
    sent_total += other.sent_total;
    lost_total += other.lost_total;
  }
};

}  // namespace ede::stats_fix
