// Wild-scan tests: population generation invariants, the per-category
// EDE outcomes through the synthetic world (one parameterized test per
// category), and aggregate sanity on a small scan.
#include <gtest/gtest.h>

#include "edns/ede.hpp"
#include "resolver/infra_cache.hpp"
#include "resolver/resolver.hpp"
#include "scan/report.hpp"
#include "scan/world.hpp"
#include "simnet/address.hpp"

namespace {

using namespace ede;
using namespace ede::scan;

PopulationConfig small_config() {
  PopulationConfig config;
  config.total_domains = 4000;
  config.seed = 7;
  return config;
}

TEST(Population, DeterministicInTheSeed) {
  const auto a = generate_population(small_config());
  const auto b = generate_population(small_config());
  ASSERT_EQ(a.domains.size(), b.domains.size());
  for (std::size_t i = 0; i < a.domains.size(); i += 97) {
    EXPECT_EQ(a.domains[i].fqdn, b.domains[i].fqdn);
    EXPECT_EQ(a.domains[i].category, b.domains[i].category);
    EXPECT_EQ(a.domains[i].tranco_rank, b.domains[i].tranco_rank);
  }
}

TEST(Population, HitsTheRequestedSizeExactly) {
  const auto population = generate_population(small_config());
  EXPECT_EQ(population.domains.size(), small_config().total_domains);
}

TEST(Population, EveryCategoryIsRepresented) {
  const auto population = generate_population(small_config());
  for (const auto& entry : category_table()) {
    if (entry.category == Category::Healthy) continue;
    EXPECT_GE(population.count(entry.category),
              small_config().min_category_count)
        << entry.name;
  }
}

TEST(Population, HealthyDominates) {
  const auto population = generate_population(small_config());
  const double healthy =
      static_cast<double>(population.count(Category::Healthy));
  EXPECT_GT(healthy / static_cast<double>(population.domains.size()), 0.85);
}

TEST(Population, CleanTldFractionsMatchFigure1) {
  const auto population = generate_population(small_config());
  std::size_t g = 0, c = 0, g_clean = 0, c_clean = 0, all_bad = 0;
  for (const auto& tld : population.tlds) {
    (tld.is_cc ? c : g) += 1;
    if (tld.clean) (tld.is_cc ? c_clean : g_clean) += 1;
    all_bad += tld.all_bad ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(g_clean) / static_cast<double>(g), 0.38,
              0.03);
  EXPECT_NEAR(static_cast<double>(c_clean) / static_cast<double>(c), 0.04,
              0.03);
  EXPECT_EQ(all_bad, 13u);  // 11 gTLDs + 2 ccTLDs
}

TEST(Population, CleanTldsHoldNoMisconfiguredDomains) {
  const auto population = generate_population(small_config());
  for (const auto& domain : population.domains) {
    if (population.tlds[domain.tld].clean) {
      EXPECT_EQ(domain.category, Category::Healthy) << domain.fqdn;
    }
  }
}

TEST(Population, AllBadTldsHoldOnlyMisconfiguredDomains) {
  const auto population = generate_population(small_config());
  for (const auto& domain : population.domains) {
    if (population.tlds[domain.tld].all_bad) {
      EXPECT_NE(domain.category, Category::Healthy) << domain.fqdn;
    }
  }
}

TEST(Population, StandbyKskConcentratesUnderTwoCcTlds) {
  auto config = small_config();
  config.total_domains = 20'000;
  const auto population = generate_population(config);
  std::size_t total = 0, concentrated = 0;
  for (const auto& domain : population.domains) {
    if (domain.category != Category::StandbyKsk) continue;
    ++total;
    const auto& tld = population.tlds[domain.tld].name;
    if (tld == "se" || tld == "nu") ++concentrated;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(concentrated) / static_cast<double>(total),
            0.8);
}

TEST(Population, TrancoRanksOnlyOnMisconfiguredDomains) {
  const auto population = generate_population(small_config());
  for (const auto& domain : population.domains) {
    if (domain.tranco_rank != 0) {
      EXPECT_NE(domain.category, Category::Healthy);
      EXPECT_LE(domain.tranco_rank, 1'000'000u);
    }
  }
}

TEST(CategoryTable, CodesAndCountsAreThePapers) {
  EXPECT_EQ(info(Category::LameRefused).headline_code, 22);
  EXPECT_EQ(info(Category::StandbyKsk).headline_code, 10);
  EXPECT_DOUBLE_EQ(info(Category::StandbyKsk).paper_count, 2'746'604.0);
  EXPECT_DOUBLE_EQ(info(Category::CachedError).paper_count, 8.0);
  EXPECT_TRUE(resolves_noerror(Category::StandbyKsk));
  EXPECT_FALSE(resolves_noerror(Category::Bogus));
}

// --- per-category end-to-end expectations --------------------------------

struct CategoryExpectation {
  Category category;
  std::vector<std::uint16_t> codes;  // sorted
  dns::RCode rcode;
};

class ScanCategory : public ::testing::TestWithParam<CategoryExpectation> {
 protected:
  struct WorldState {
    WorldState()
        : population(generate_population([] {
            PopulationConfig config;
            config.total_domains = 3000;
            config.seed = 11;
            return config;
          }())),
          network(std::make_shared<sim::Network>(
              std::make_shared<sim::Clock>())),
          world(network, population),
          resolver(world.make_resolver(resolver::profile_cloudflare())) {
      world.prewarm(resolver);
    }
    Population population;
    std::shared_ptr<sim::Network> network;
    ScanWorld world;
    resolver::RecursiveResolver resolver;
  };

  static WorldState& state() {
    static WorldState instance;
    return instance;
  }
};

TEST_P(ScanCategory, ProducesTheExpectedCodesAndRcode) {
  auto& s = state();
  const auto& expectation = GetParam();

  const DomainSpec* domain = nullptr;
  for (const auto& d : s.population.domains) {
    if (d.category != expectation.category) continue;
    // Partially-lame domains with an even provider slot list the healthy
    // server first and are deliberately undetectable (see world.cpp);
    // the detectable half carries an odd slot.
    if (d.category == Category::PartialFail && d.provider % 2 == 0) continue;
    domain = &d;
    break;
  }
  ASSERT_NE(domain, nullptr) << to_string(expectation.category);

  const auto outcome =
      s.resolver.resolve(dns::Name::of(domain->fqdn), dns::RRType::A);
  std::vector<std::uint16_t> codes;
  for (const auto& error : outcome.errors)
    codes.push_back(static_cast<std::uint16_t>(error.code));
  std::sort(codes.begin(), codes.end());
  codes.erase(std::unique(codes.begin(), codes.end()), codes.end());

  EXPECT_EQ(codes, expectation.codes) << domain->fqdn;
  EXPECT_EQ(outcome.rcode, expectation.rcode) << domain->fqdn;
}

INSTANTIATE_TEST_SUITE_P(
    AllCategories, ScanCategory,
    ::testing::Values(
        CategoryExpectation{Category::Healthy, {}, dns::RCode::NOERROR},
        CategoryExpectation{Category::LameRefused, {22, 23},
                            dns::RCode::SERVFAIL},
        CategoryExpectation{Category::LameTimeout, {22, 23},
                            dns::RCode::SERVFAIL},
        CategoryExpectation{Category::LameUnroutable, {22},
                            dns::RCode::SERVFAIL},
        CategoryExpectation{Category::PartialFail, {23}, dns::RCode::NOERROR},
        CategoryExpectation{Category::StandbyKsk, {10}, dns::RCode::NOERROR},
        CategoryExpectation{Category::DnskeyMissing, {9},
                            dns::RCode::SERVFAIL},
        CategoryExpectation{Category::Bogus, {6}, dns::RCode::SERVFAIL},
        CategoryExpectation{Category::InvalidData, {22, 24},
                            dns::RCode::SERVFAIL},
        CategoryExpectation{Category::UnsupportedAlgo, {1},
                            dns::RCode::NOERROR},
        CategoryExpectation{Category::SigExpired, {7}, dns::RCode::SERVFAIL},
        CategoryExpectation{Category::NsecMissing, {12},
                            dns::RCode::SERVFAIL},
        CategoryExpectation{Category::UnsupportedDsDigest, {2},
                            dns::RCode::NOERROR},
        CategoryExpectation{Category::StaleAnswer, {3, 22},
                            dns::RCode::NOERROR},
        CategoryExpectation{Category::SigNotYet, {8}, dns::RCode::SERVFAIL},
        CategoryExpectation{Category::CachedError, {13},
                            dns::RCode::SERVFAIL},
        CategoryExpectation{Category::CnameLoop, {0}, dns::RCode::SERVFAIL}),
    [](const ::testing::TestParamInfo<CategoryExpectation>& param_info) {
      std::string name = to_string(param_info.param.category);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ScanPartialFail, HealthyFirstOrderingHidesTheDeadServer) {
  // The undercounted half: healthy NS first, so first-success probing
  // resolves cleanly and never sees the dead server.
  PopulationConfig config;
  config.total_domains = 3000;
  config.seed = 11;
  const auto population = generate_population(config);
  auto network =
      std::make_shared<sim::Network>(std::make_shared<sim::Clock>());
  ScanWorld world(network, population);
  auto resolver = world.make_resolver(resolver::profile_cloudflare());

  const DomainSpec* hidden = nullptr;
  for (const auto& d : population.domains) {
    if (d.category == Category::PartialFail && d.provider % 2 == 0) {
      hidden = &d;
      break;
    }
  }
  ASSERT_NE(hidden, nullptr);
  const auto outcome =
      resolver.resolve(dns::Name::of(hidden->fqdn), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR);
  EXPECT_TRUE(outcome.errors.empty());

  // Exhaustive probing finds it.
  resolver::ResolverOptions options;
  options.exhaustive_ns_probing = true;
  auto thorough = world.make_resolver(resolver::profile_cloudflare(), options);
  const auto probed =
      thorough.resolve(dns::Name::of(hidden->fqdn), dns::RRType::A);
  EXPECT_EQ(probed.rcode, dns::RCode::NOERROR);
  ASSERT_EQ(probed.errors.size(), 1u);
  EXPECT_EQ(probed.errors.front().code, edns::EdeCode::NetworkError);
}

TEST(ScanAggregate, SmallScanLandsNearThePaperRate) {
  PopulationConfig config;
  config.total_domains = 6000;
  config.seed = 3;
  const auto population = generate_population(config);
  auto network =
      std::make_shared<sim::Network>(std::make_shared<sim::Clock>());
  ScanWorld world(network, population);
  auto resolver = world.make_resolver(resolver::profile_cloudflare());
  world.prewarm(resolver);

  const auto result = Scanner{}.run(resolver, population);
  EXPECT_EQ(result.total_domains, population.domains.size());
  const double rate = static_cast<double>(result.domains_with_ede) /
                      static_cast<double>(result.total_domains);
  // Paper: 5.8%. Floored rare categories push small scans slightly higher.
  EXPECT_GT(rate, 0.04);
  EXPECT_LT(rate, 0.09);
  // Ordering of the top codes matches the paper: 22 >= 23 >= 10.
  ASSERT_TRUE(result.per_code.count(22));
  ASSERT_TRUE(result.per_code.count(23));
  ASSERT_TRUE(result.per_code.count(10));
  EXPECT_GE(result.per_code.at(22).domains, result.per_code.at(23).domains);
  EXPECT_GE(result.per_code.at(23).domains, result.per_code.at(10).domains);
}

TEST(ScanReport, RenderersProduceTheExpectedSections) {
  PopulationConfig config;
  config.total_domains = 3000;
  const auto population = generate_population(config);
  auto network =
      std::make_shared<sim::Network>(std::make_shared<sim::Clock>());
  ScanWorld world(network, population);
  auto resolver = world.make_resolver(resolver::profile_cloudflare());
  world.prewarm(resolver);
  const auto result = Scanner{}.run(resolver, population);

  const auto s42 = render_section42(result, population);
  EXPECT_NE(s42.find("No Reachable Authority"), std::string::npos);
  EXPECT_NE(s42.find("paper"), std::string::npos);
  const auto f1 = render_figure1(result, population);
  EXPECT_NE(f1.find("gTLDs with zero misconfigured domains"),
            std::string::npos);
  const auto f2 = render_figure2(result, population);
  EXPECT_NE(f2.find("Tranco"), std::string::npos);
}

TEST(InfraSummary, EmissionIsInsertionOrderIndependent) {
  // The infra cache is an unordered map; the renderer must not leak its
  // bucket order. Feed the same observations in two different orders and
  // the reports must be byte-identical, with rows in address order.
  const std::vector<std::string> addrs = {"198.51.100.9", "192.0.2.1",
                                          "203.0.113.77", "192.0.2.200"};
  resolver::InfraCache forward;
  for (const auto& a : addrs)
    forward.report_success(sim::NodeAddress::of(a), 25);
  resolver::InfraCache reverse;
  for (auto it = addrs.rbegin(); it != addrs.rend(); ++it)
    reverse.report_success(sim::NodeAddress::of(*it), 25);

  const auto report = render_infra_summary(forward);
  EXPECT_EQ(report, render_infra_summary(reverse));
  const auto first = report.find("192.0.2.1");
  const auto last = report.find("203.0.113.77");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(last, std::string::npos);
  EXPECT_LT(first, last);
}

TEST(MakeCdf, MonotoneAndNormalized) {
  const auto cdf = make_cdf({3.0, 1.0, 2.0, 2.0, 5.0});
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  // Duplicates collapse: x=2.0 appears once with cumulative weight.
  int twos = 0;
  for (const auto& [x, y] : cdf) twos += (x == 2.0) ? 1 : 0;
  EXPECT_EQ(twos, 1);
}

}  // namespace
