// DNS Error Reporting (RFC 9567) end-to-end tests: option encoding, report
// QNAME construction/parsing, and the full loop — an authority advertises
// an agent, validation fails, the resolver reports, the agent logs it.
#include <gtest/gtest.h>

#include "edns/ede.hpp"
#include "edns/report_channel.hpp"
#include "resolver/resolver.hpp"
#include "server/auth_server.hpp"
#include "server/report_agent.hpp"
#include "testbed/mutations.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace ede;
using edns::EdeCode;

TEST(ReportChannel, OptionRoundTrip) {
  const auto agent = dns::Name::of("agent.example.net");
  const auto option = edns::make_report_channel_option(agent);
  EXPECT_EQ(option.code, edns::kReportChannelOptionCode);
  const auto parsed = edns::parse_report_channel_option(option);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, agent);
}

TEST(ReportChannel, RejectsGarbageOption) {
  dns::EdnsOption option{edns::kReportChannelOptionCode, {0xff, 0xff}};
  EXPECT_FALSE(edns::parse_report_channel_option(option).has_value());
  dns::EdnsOption wrong_code{10, dns::Name::of("a.b").wire()};
  EXPECT_FALSE(edns::parse_report_channel_option(wrong_code).has_value());
}

TEST(ReportChannel, MessageLevelAccessors) {
  dns::Message msg = dns::make_query(1, dns::Name::of("q.test"), dns::RRType::A);
  EXPECT_FALSE(edns::get_report_channel(msg).has_value());
  edns::set_report_channel(msg, dns::Name::of("agent.example"));
  const auto agent = edns::get_report_channel(msg);
  ASSERT_TRUE(agent.has_value());
  EXPECT_EQ(*agent, dns::Name::of("agent.example"));
}

TEST(ReportQname, ConstructionMatchesRfc9567) {
  const auto qname = edns::make_report_qname(
      dns::Name::of("broken.example.com"), dns::RRType::A,
      EdeCode::SignatureExpired, dns::Name::of("agent.example.net"));
  ASSERT_TRUE(qname.has_value());
  EXPECT_EQ(qname->to_string(),
            "_er.1.broken.example.com.7._er.agent.example.net.");
}

TEST(ReportQname, RoundTripThroughParsing) {
  const auto agent = dns::Name::of("a.report.example");
  for (const auto code : {EdeCode::DnssecBogus, EdeCode::NetworkError,
                          EdeCode::Other}) {
    const auto qname = edns::make_report_qname(
        dns::Name::of("www.some-domain.org"), dns::RRType::AAAA, code, agent);
    ASSERT_TRUE(qname.has_value());
    const auto report = edns::parse_report_qname(*qname, agent);
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->qname, dns::Name::of("www.some-domain.org"));
    EXPECT_EQ(report->qtype, dns::RRType::AAAA);
    EXPECT_EQ(report->code, code);
  }
}

TEST(ReportQname, OversizedReportIsSkipped) {
  const std::string big(63, 'x');
  const auto long_name =
      dns::Name::of(big + "." + big + "." + big + ".com");
  const auto qname = edns::make_report_qname(
      long_name, dns::RRType::A, EdeCode::DnssecBogus,
      dns::Name::of(big + ".report.example"));
  EXPECT_FALSE(qname.has_value());
}

TEST(ReportQname, ParserRejectsNonReports) {
  const auto agent = dns::Name::of("agent.example");
  EXPECT_FALSE(edns::parse_report_qname(dns::Name::of("www.agent.example"),
                                        agent)
                   .has_value());
  EXPECT_FALSE(edns::parse_report_qname(
                   dns::Name::of("_er.notanumber.a.7._er.agent.example"),
                   agent)
                   .has_value());
  EXPECT_FALSE(edns::parse_report_qname(dns::Name::of("other.domain"), agent)
                   .has_value());
}

TEST(ReportAgent, RecordsAndConfirms) {
  server::ReportAgent agent(dns::Name::of("agent.example"));
  const auto qname = edns::make_report_qname(
      dns::Name::of("x.test"), dns::RRType::A, EdeCode::DnskeyMissing,
      agent.agent_domain());
  const auto response =
      agent.handle(dns::make_query(9, *qname, dns::RRType::TXT));
  EXPECT_EQ(response.header.rcode, dns::RCode::NOERROR);
  EXPECT_TRUE(response.header.aa);
  ASSERT_EQ(agent.reports().size(), 1u);
  EXPECT_EQ(agent.reports().front().qname, dns::Name::of("x.test"));
  EXPECT_EQ(agent.reports().front().code, EdeCode::DnskeyMissing);
}

// --- the full loop over a small simulated hierarchy ----------------------

class ErrorReportingLoop : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_shared<sim::Clock>();
    network_ = std::make_shared<sim::Network>(clock_);

    const dns::Name root_name;
    const dns::Name broken = dns::Name::of("broken.test");
    const dns::Name agent_domain = dns::Name::of("agent.test");

    // The broken child: signed, then all signatures expired; its server
    // advertises the reporting agent.
    auto child = std::make_shared<zone::Zone>(broken);
    dns::SoaRdata soa;
    soa.mname = broken;
    soa.rname = broken;
    soa.minimum = 300;
    child->add(broken, dns::RRType::SOA, soa);
    child->add(broken, dns::RRType::NS,
               dns::NsRdata{dns::Name::of("ns1.broken.test")});
    child->add(dns::Name::of("ns1.broken.test"), dns::RRType::A,
               dns::ARdata{*dns::Ipv4Address::parse("93.184.220.1")});
    child->add(broken, dns::RRType::A,
               dns::ARdata{*dns::Ipv4Address::parse("93.184.220.9")});
    const auto child_keys = zone::make_zone_keys(broken);
    zone::SigningPolicy policy;
    zone::sign_zone(*child, child_keys, policy);
    testbed::apply_mutation(*child, child_keys, policy,
                            testbed::Mutation::RrsigExpireAll);

    server::ServerConfig child_config;
    child_config.report_agent = agent_domain;
    child_server_ = std::make_shared<server::AuthServer>(child_config);
    child_server_->add_zone(child);
    network_->attach(sim::NodeAddress::of("93.184.220.1"),
                     child_server_->endpoint());

    // The reporting agent.
    agent_ = std::make_shared<server::ReportAgent>(agent_domain);
    network_->attach(sim::NodeAddress::of("93.184.220.2"),
                     agent_->endpoint());

    // A signed root delegating to both.
    auto root_zone = std::make_shared<zone::Zone>(root_name);
    dns::SoaRdata root_soa;
    root_soa.mname = dns::Name::of("a.root-servers.net");
    root_soa.rname = root_name;
    root_zone->add(root_name, dns::RRType::SOA, root_soa);
    root_zone->add(root_name, dns::RRType::NS,
                   dns::NsRdata{dns::Name::of("a.root-servers.net")});
    root_zone->add(dns::Name::of("a.root-servers.net"), dns::RRType::A,
                   dns::ARdata{*dns::Ipv4Address::parse("198.41.0.4")});
    root_zone->add(broken, dns::RRType::NS,
                   dns::NsRdata{dns::Name::of("ns1.broken.test")});
    root_zone->add(dns::Name::of("ns1.broken.test"), dns::RRType::A,
                   dns::ARdata{*dns::Ipv4Address::parse("93.184.220.1")});
    for (const auto& ds : zone::ds_records(broken, child_keys)) {
      root_zone->add(broken, dns::RRType::DS, ds);
    }
    root_zone->add(agent_domain, dns::RRType::NS,
                   dns::NsRdata{dns::Name::of("ns1.agent.test")});
    root_zone->add(dns::Name::of("ns1.agent.test"), dns::RRType::A,
                   dns::ARdata{*dns::Ipv4Address::parse("93.184.220.2")});
    const auto root_keys = zone::make_zone_keys(root_name);
    trust_anchor_ = root_keys.ksk.dnskey;
    zone::sign_zone(*root_zone, root_keys, {});
    root_server_ = std::make_shared<server::AuthServer>();
    root_server_->add_zone(root_zone);
    network_->attach(sim::NodeAddress::of("198.41.0.4"),
                     root_server_->endpoint());
  }

  resolver::RecursiveResolver make(bool reporting) {
    resolver::ResolverOptions options;
    options.enable_error_reporting = reporting;
    return resolver::RecursiveResolver(
        network_, resolver::profile_cloudflare(),
        {sim::NodeAddress::of("198.41.0.4")}, trust_anchor_, options);
  }

  std::shared_ptr<sim::Clock> clock_;
  std::shared_ptr<sim::Network> network_;
  std::shared_ptr<server::AuthServer> child_server_;
  std::shared_ptr<server::AuthServer> root_server_;
  std::shared_ptr<server::ReportAgent> agent_;
  dns::DnskeyRdata trust_anchor_;
};

TEST_F(ErrorReportingLoop, FailureIsReportedToTheAgent) {
  auto resolver = make(/*reporting=*/true);
  const auto outcome =
      resolver.resolve(dns::Name::of("broken.test"), dns::RRType::A);

  EXPECT_EQ(outcome.rcode, dns::RCode::SERVFAIL);
  ASSERT_FALSE(outcome.errors.empty());
  EXPECT_EQ(outcome.errors.front().code, EdeCode::SignatureExpired);
  ASSERT_TRUE(outcome.report_agent.has_value());
  EXPECT_EQ(*outcome.report_agent, dns::Name::of("agent.test"));
  ASSERT_TRUE(outcome.report_sent.has_value());

  ASSERT_EQ(agent_->reports().size(), 1u);
  const auto& report = agent_->reports().front();
  EXPECT_EQ(report.qname, dns::Name::of("broken.test"));
  EXPECT_EQ(report.qtype, dns::RRType::A);
  EXPECT_EQ(report.code, EdeCode::SignatureExpired);
}

TEST_F(ErrorReportingLoop, ReportsAreDeduplicated) {
  auto resolver = make(/*reporting=*/true);
  (void)resolver.resolve(dns::Name::of("broken.test"), dns::RRType::A);
  (void)resolver.resolve(dns::Name::of("broken.test"), dns::RRType::A);
  (void)resolver.resolve(dns::Name::of("broken.test"), dns::RRType::A);
  EXPECT_EQ(agent_->reports().size(), 1u);
}

TEST_F(ErrorReportingLoop, DisabledByDefault) {
  auto resolver = make(/*reporting=*/false);
  const auto outcome =
      resolver.resolve(dns::Name::of("broken.test"), dns::RRType::A);
  EXPECT_FALSE(outcome.report_sent.has_value());
  EXPECT_TRUE(agent_->reports().empty());
}

TEST_F(ErrorReportingLoop, NoReportOnSuccess) {
  // The agent domain itself resolves fine and must not self-report.
  auto resolver = make(/*reporting=*/true);
  const auto outcome = resolver.resolve(
      dns::Name::of("anything.agent.test"), dns::RRType::TXT);
  EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR);
  EXPECT_TRUE(agent_->reports().empty());
}

}  // namespace
