// Chaos tests: the adversarial transport driving the resolver's adaptive
// retry machinery end to end. A scripted fault window kills the control
// domain's authority mid-scenario and the EDE diagnosis must progress
// exactly the way the paper's lame-delegation story predicts: connectivity
// codes (22/23) while the server is down, Stale Answer (3) while the infra
// cache holds the dead server down without spending packets on it, and a
// clean validated NOERROR after recovery. Everything runs under the seeded
// latency model, so the whole storyline is deterministic and the
// inter-attempt spacing of the exponential backoff is assertable.
#include <gtest/gtest.h>

#include <sstream>

#include "edns/ede.hpp"
#include "edns/edns.hpp"
#include "resolver/forwarder.hpp"
#include "resolver/resolver.hpp"
#include "resolver/retry.hpp"
#include "scan/report.hpp"
#include "scan/scanner.hpp"
#include "scan/world.hpp"
#include "server/auth_server.hpp"
#include "simnet/byzantine.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace ede;
using resolver::RecursiveResolver;
using resolver::ResolverOptions;
using resolver::RetryPolicy;

class ChaosTest : public ::testing::Test {
 protected:
  ChaosTest()
      : clock_(std::make_shared<sim::Clock>()),
        network_(std::make_shared<sim::Network>(clock_)),
        testbed_(network_) {
    child_addr_ = testbed_.server_address("valid").value();
  }

  RecursiveResolver make(ResolverOptions options = {}) {
    return testbed_.make_resolver(resolver::profile_cloudflare(), options);
  }

  static dns::Name valid_name() {
    return dns::Name::of("valid.extended-dns-errors.com");
  }

  static bool has_code(const resolver::Outcome& outcome, edns::EdeCode code) {
    for (const auto& error : outcome.errors)
      if (error.code == code) return true;
    return false;
  }

  std::vector<sim::Network::SendRecord> sends_to_child() const {
    std::vector<sim::Network::SendRecord> out;
    for (const auto& record : network_->send_log())
      if (record.destination == child_addr_) out.push_back(record);
    return out;
  }

  std::shared_ptr<sim::Clock> clock_;
  std::shared_ptr<sim::Network> network_;
  testbed::Testbed testbed_;
  sim::NodeAddress child_addr_;
};

// The headline scenario from the issue: healthy -> scripted outage ->
// hold-down -> recovery, with the EDE progression 22/23 -> 3 -> none.
TEST_F(ChaosTest, ScriptedOutageWalksTheEdeProgression) {
  network_->set_latency({.enabled = true, .base_rtt_ms = 20, .jitter_ms = 8,
                         .seed = 0xc4a05});

  ResolverOptions options;
  RetryPolicy retry;
  retry.initial_timeout_ms = 400;
  retry.backoff_factor = 2.0;
  retry.attempts_per_server = 4;  // enough probes to watch the backoff grow
  options.retry = retry;
  auto resolver = make(options);

  // Act 1 — healthy: a validated answer lands in the cache.
  const auto healthy = resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_EQ(healthy.rcode, dns::RCode::NOERROR);
  EXPECT_EQ(healthy.security, dnssec::Security::Secure);
  EXPECT_TRUE(healthy.errors.empty());

  // Act 2 — the authority dies for a scripted window 4000 s from now
  // (past the 3600 s TTLs, so resolution must go upstream into it).
  const auto t0 = clock_->now();
  network_->fail_between(child_addr_, t0 + 4000, t0 + 8000);
  clock_->set(t0 + 4000);
  network_->record_sends(true);

  // An uncached qtype forces the resolver upstream into the outage: every
  // probe times out and the connectivity codes surface.
  const auto down = resolver.resolve(valid_name(), dns::RRType::TXT);
  EXPECT_EQ(down.rcode, dns::RCode::SERVFAIL);
  EXPECT_TRUE(has_code(down, edns::EdeCode::NoReachableAuthority));  // 22
  EXPECT_TRUE(has_code(down, edns::EdeCode::NetworkError));          // 23

  // The retransmission schedule to the dead server backs off
  // exponentially: consecutive gaps strictly increase, each doubling.
  const auto probes = sends_to_child();
  ASSERT_GE(probes.size(), 4u);
  EXPECT_FALSE(probes[0].retransmission);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_TRUE(probes[i].retransmission);
    EXPECT_GT(probes[i].at_ms, probes[i - 1].at_ms);
  }
  const auto gap1 = probes[1].at_ms - probes[0].at_ms;
  const auto gap2 = probes[2].at_ms - probes[1].at_ms;
  const auto gap3 = probes[3].at_ms - probes[2].at_ms;
  EXPECT_EQ(gap1, 400u);
  EXPECT_EQ(gap2, 2 * gap1);
  EXPECT_EQ(gap3, 2 * gap2);
  EXPECT_GE(network_->stats().retransmits, 3u);

  // Four consecutive timeouts passed the hold-down threshold.
  EXPECT_GE(resolver.infra().stats().holddowns_started, 1u);

  // Act 3 — hold-down: the A record is served stale (EDE 3) and not one
  // packet is spent probing the held-down authority.
  network_->record_sends(true);  // resets the log
  const auto stale = resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_EQ(stale.rcode, dns::RCode::NOERROR);
  EXPECT_TRUE(has_code(stale, edns::EdeCode::StaleAnswer));    // 3
  EXPECT_TRUE(has_code(stale, edns::EdeCode::NetworkError));   // 23 preserved
  EXPECT_TRUE(sends_to_child().empty());
  EXPECT_GE(resolver.infra().stats().holddown_skips, 1u);

  // Act 4 — recovery: past the fault window and the hold-down, the next
  // resolution walks the hierarchy again and validates cleanly.
  clock_->set(t0 + 9000);
  const auto recovered = resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_EQ(recovered.rcode, dns::RCode::NOERROR);
  EXPECT_EQ(recovered.security, dnssec::Security::Secure);
  EXPECT_TRUE(recovered.errors.empty());
}

// The same scenario replayed on a fresh stack with the same seed produces
// a bit-identical transcript: rcodes, EDE codes and probe timestamps.
TEST(ChaosDeterminism, FixedSeedReplaysTheSameStoryline) {
  const auto run = [] {
    auto clock = std::make_shared<sim::Clock>();
    auto network = std::make_shared<sim::Network>(clock);
    testbed::Testbed testbed(network);
    const auto child = testbed.server_address("valid").value();
    network->set_latency({.enabled = true, .base_rtt_ms = 20, .jitter_ms = 8,
                          .seed = 0xc4a05});
    ResolverOptions options;
    RetryPolicy retry;
    retry.attempts_per_server = 4;
    options.retry = retry;
    auto resolver =
        testbed.make_resolver(resolver::profile_cloudflare(), options);

    std::ostringstream transcript;
    const auto log = [&](const resolver::Outcome& outcome) {
      transcript << static_cast<int>(outcome.rcode) << ':';
      for (const auto& error : outcome.errors)
        transcript << static_cast<std::uint16_t>(error.code) << ',';
      transcript << ';';
    };

    network->record_sends(true);
    log(resolver.resolve(dns::Name::of("valid.extended-dns-errors.com"),
                         dns::RRType::A));
    const auto t0 = clock->now();
    network->fail_between(child, t0 + 4000, t0 + 8000);
    clock->set(t0 + 4000);
    log(resolver.resolve(dns::Name::of("valid.extended-dns-errors.com"),
                         dns::RRType::TXT));
    log(resolver.resolve(dns::Name::of("valid.extended-dns-errors.com"),
                         dns::RRType::A));
    clock->set(t0 + 9000);
    log(resolver.resolve(dns::Name::of("valid.extended-dns-errors.com"),
                         dns::RRType::A));
    for (const auto& record : network->send_log()) {
      transcript << record.at_ms << '@' << record.destination.to_string()
                 << (record.retransmission ? "R" : "") << ' ';
    }
    return transcript.str();
  };

  const auto first = run();
  const auto second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// The acceptance bar for the infrastructure cache: on a population where
// the same dead provider addresses serve many lame delegations, enabling
// it measurably cuts packets while the per-code EDE classification stays
// byte-for-byte identical.
TEST(ChaosScan, InfraCacheSavesPacketsWithoutChangingTheDiagnosis) {
  // Large enough that the 15-slot Timeout pool and 64-slot Unroutable
  // pool are each hit several times per address — the repeated-lame
  // traffic the infra cache exists to absorb.
  scan::PopulationConfig config;
  config.total_domains = 10'000;
  config.seed = 7;
  const auto population = scan::generate_population(config);

  const auto run = [&](bool infra_enabled) {
    auto clock = std::make_shared<sim::Clock>();
    auto network = std::make_shared<sim::Network>(clock);
    scan::ScanWorld world(network, population);
    ResolverOptions options;
    options.infra.enabled = infra_enabled;
    auto resolver =
        world.make_resolver(resolver::profile_cloudflare(), options);
    world.prewarm(resolver);
    return scan::Scanner().run(resolver, population);
  };

  const auto with_infra = run(true);
  const auto without_infra = run(false);

  // Identical classification, domain for domain.
  ASSERT_EQ(with_infra.per_code.size(), without_infra.per_code.size());
  for (const auto& [code, stats] : with_infra.per_code) {
    const auto it = without_infra.per_code.find(code);
    ASSERT_NE(it, without_infra.per_code.end()) << "code " << code;
    EXPECT_EQ(stats.domains, it->second.domains) << "code " << code;
  }
  EXPECT_EQ(with_infra.codes_by_category, without_infra.codes_by_category);
  EXPECT_EQ(with_infra.domains_with_ede, without_infra.domains_with_ede);
  EXPECT_EQ(with_infra.servfail_domains, without_infra.servfail_domains);
  EXPECT_EQ(with_infra.lame_union, without_infra.lame_union);

  // Measurably cheaper: held-down dead servers stop eating retransmissions.
  EXPECT_GT(with_infra.transport.holddown_skips, 0u);
  EXPECT_EQ(without_infra.transport.holddown_skips, 0u);
  EXPECT_LT(with_infra.transport.packets_sent,
            without_infra.transport.packets_sent);
  EXPECT_LT(with_infra.transport.retransmits,
            without_infra.transport.retransmits);
}

// The SERVFAIL cache (RFC 2308) and the infra-cache hold-down both sit in
// front of serve-stale; neither may shadow it. With the authority held
// down AND a live cached SERVFAIL for the very (name, type) being asked,
// the resolver must still prefer the expired answer (RFC 8767: stale data
// beats an error), replay the outage diagnosis (22/23) alongside EDE 3,
// and spend zero packets — exactly the interplay PR 1's progression test
// pins for the hold-down alone.
TEST_F(ChaosTest, CachedServfailUnderHolddownStillServesStale) {
  network_->set_latency({.enabled = true, .base_rtt_ms = 20, .jitter_ms = 8,
                         .seed = 0xc4a05});
  ResolverOptions options;
  RetryPolicy retry;
  retry.attempts_per_server = 4;  // enough consecutive timeouts to hold down
  options.retry = retry;
  auto resolver = make(options);

  // Healthy pass: positive A entry and a negative (NXDOMAIN) entry land.
  const auto missing = dns::Name::of("nope.valid.extended-dns-errors.com");
  ASSERT_EQ(resolver.resolve(valid_name(), dns::RRType::A).rcode,
            dns::RCode::NOERROR);
  ASSERT_EQ(resolver.resolve(missing, dns::RRType::A).rcode,
            dns::RCode::NXDOMAIN);

  // Outage past the 3600 s TTLs; the TXT probe walks into it, diagnoses
  // 22/23 and trips the hold-down.
  const auto t0 = clock_->now();
  network_->fail_between(child_addr_, t0 + 4000, t0 + 8000);
  clock_->set(t0 + 4000);
  const auto down = resolver.resolve(valid_name(), dns::RRType::TXT);
  ASSERT_EQ(down.rcode, dns::RCode::SERVFAIL);
  ASSERT_TRUE(has_code(down, edns::EdeCode::NoReachableAuthority));
  ASSERT_GE(resolver.infra().stats().holddowns_started, 1u);

  // Plant live cached SERVFAILs carrying the outage diagnosis for both
  // names, alongside their now-stale cache entries and the held-down
  // server.
  const auto now = clock_->now();
  resolver.cache().put_servfail(valid_name(), dns::RRType::A,
                                {down.findings, now + 30}, now);
  resolver.cache().put_servfail(missing, dns::RRType::A,
                                {down.findings, now + 30}, now);

  const auto hits_before = resolver.hardening_stats().servfail_cache_hits;
  network_->record_sends(true);
  const auto stale = resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_EQ(stale.rcode, dns::RCode::NOERROR);
  EXPECT_FALSE(stale.response.answer.empty());
  EXPECT_TRUE(has_code(stale, edns::EdeCode::StaleAnswer));           // 3
  EXPECT_TRUE(has_code(stale, edns::EdeCode::NetworkError));          // 23
  EXPECT_FALSE(has_code(stale, edns::EdeCode::CachedError));          // not 13

  const auto stale_nx = resolver.resolve(missing, dns::RRType::A);
  EXPECT_EQ(stale_nx.rcode, dns::RCode::NXDOMAIN);
  EXPECT_TRUE(has_code(stale_nx, edns::EdeCode::StaleNxdomainAnswer));  // 19
  EXPECT_FALSE(has_code(stale_nx, edns::EdeCode::CachedError));

  // Both resolutions were SERVFAIL-cache hits and spent zero packets on
  // the held-down authority.
  EXPECT_EQ(resolver.hardening_stats().servfail_cache_hits, hits_before + 2);
  EXPECT_TRUE(sends_to_child().empty());

  // With serve-stale off the same state degrades to the cached error
  // (EDE 13 shape): SERVFAIL, diagnosis replayed, still zero packets.
  ResolverOptions no_stale;
  no_stale.serve_stale = false;
  no_stale.retry = retry;
  auto strict = make(no_stale);
  strict.cache().put_servfail(valid_name(), dns::RRType::A,
                              {down.findings, now + 30}, now);
  const auto cached_error = strict.resolve(valid_name(), dns::RRType::A);
  EXPECT_EQ(cached_error.rcode, dns::RCode::SERVFAIL);
  EXPECT_EQ(strict.hardening_stats().servfail_cache_hits, 1u);
}

// An authority that answers every exchange with a mangled transaction ID
// is indistinguishable from a dead one: every reply is silently discarded
// by the acceptance gate (no findings leak from unaccepted datagrams), the
// retries run dry and the diagnosis is the connectivity pair 22/23.
TEST_F(ChaosTest, WrongQidFloodIsRejectedAndDiagnosedAsUnreachable) {
  auto stats = std::make_shared<sim::ByzantineStats>();
  network_->set_mutator(
      child_addr_, sim::make_byzantine_mutator(
                       {sim::ByzantineBehavior::wrong_qid()}, 0xbad, stats));
  auto resolver = make();

  const auto outcome = resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::SERVFAIL);
  EXPECT_TRUE(has_code(outcome, edns::EdeCode::NoReachableAuthority));
  EXPECT_GT(resolver.hardening_stats().rejected_qid_mismatch, 0u);
  EXPECT_GT(stats->mutations_applied, 0u);
  EXPECT_EQ(stats->by_kind[static_cast<std::size_t>(sim::ByzantineKind::WrongQid)],
            stats->mutations_applied);
}

// A flaky forger that mangles only half the exchanges loses to the retry
// schedule: the gate discards the bad replies, a clean one eventually
// lands and the resolution still validates.
TEST_F(ChaosTest, IntermittentQidManglingIsSurvivedByRetry) {
  auto stats = std::make_shared<sim::ByzantineStats>();
  network_->set_mutator(
      child_addr_,
      sim::make_byzantine_mutator({sim::ByzantineBehavior::wrong_qid(0.5)},
                                  0xa11ce, stats));
  ResolverOptions options;
  RetryPolicy retry;
  retry.attempts_per_server = 8;
  options.retry = retry;
  auto resolver = make(options);

  // Several uncached qtypes, each forcing fresh exchanges with the flaky
  // forger; every one must come back clean.
  for (const auto qtype : {dns::RRType::A, dns::RRType::TXT,
                           dns::RRType::AAAA, dns::RRType::MX}) {
    const auto outcome = resolver.resolve(valid_name(), qtype);
    EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR)
        << dns::to_string(qtype);
  }
  EXPECT_GT(resolver.hardening_stats().rejected_qid_mismatch, 0u);
  EXPECT_GT(stats->mutations_applied, 0u);
}

// An on-path attacker who knows the QID and echoes the question survives
// the acceptance gate; the forged (unsigned, poison-carrying) answer must
// then die in the scrubber + validator, and the poison name must appear in
// neither the client response nor the cache.
TEST_F(ChaosTest, OnPathSpoofNeverPoisonsCacheOrClient) {
  network_->set_mutator(
      child_addr_,
      sim::make_byzantine_mutator(
          {sim::ByzantineBehavior::spoof(1.0, /*qid_known=*/true)}, 0x0ff));
  auto resolver = make();

  const auto outcome = resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::SERVFAIL);
  EXPECT_GT(resolver.hardening_stats().scrubbed_records, 0u);

  const auto owned = [](const std::vector<dns::ResourceRecord>& rrs) {
    for (const auto& rr : rrs)
      if (rr.name == sim::poison_marker()) return true;
    return false;
  };
  EXPECT_FALSE(owned(outcome.response.answer));
  EXPECT_FALSE(owned(outcome.response.authority));
  EXPECT_FALSE(owned(outcome.response.additional));
  EXPECT_EQ(resolver.cache().get_positive(sim::poison_marker(),
                                          dns::RRType::A, clock_->now()),
            nullptr);
  EXPECT_EQ(resolver.cache().get_stale_positive(sim::poison_marker(),
                                                dns::RRType::A,
                                                clock_->now()),
            nullptr);
}

// Unbound-scrubber behavior: out-of-bailiwick records stuffed around an
// otherwise-honest answer are dropped without harming the answer itself —
// the resolution stays NOERROR/Secure and the poison is counted, not
// cached.
TEST_F(ChaosTest, BailiwickStuffingIsScrubbedWithoutHarmingTheAnswer) {
  auto stats = std::make_shared<sim::ByzantineStats>();
  network_->set_mutator(child_addr_,
                        sim::make_byzantine_mutator(
                            {sim::ByzantineBehavior::bailiwick_stuff()},
                            0x57aff, stats));
  auto resolver = make();

  const auto outcome = resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR);
  EXPECT_EQ(outcome.security, dnssec::Security::Secure);
  EXPECT_GT(resolver.hardening_stats().scrubbed_records, 0u);
  EXPECT_GT(
      stats->by_kind[static_cast<std::size_t>(sim::ByzantineKind::BailiwickStuff)],
      0u);
  EXPECT_EQ(resolver.cache().get_positive(sim::poison_marker(),
                                          dns::RRType::A, clock_->now()),
            nullptr);
  EXPECT_EQ(resolver.cache().get_positive(sim::poison_marker(),
                                          dns::RRType::NS, clock_->now()),
            nullptr);
}

// Compression-pointer traps (self-loops and 300-hop backwards chains) must
// be rejected by the wire reader as unparsable — the resolver retries,
// runs dry and reports connectivity trouble instead of spinning or
// crashing.
TEST_F(ChaosTest, PointerTrapsAreRejectedWithoutHangingTheParser) {
  network_->set_mutator(
      child_addr_,
      sim::make_byzantine_mutator({sim::ByzantineBehavior::pointer_loop()},
                                  0x100));
  auto resolver = make();
  const auto outcome = resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::SERVFAIL);
  EXPECT_TRUE(has_code(outcome, edns::EdeCode::NoReachableAuthority));
}

// In-flight query coalescing: a delegation listing the same glueless
// nameserver name twice (a real-world copy-paste zone bug) makes the
// resolver chase the identical (zone, qname, qtype) probe twice within
// one resolution. With the probe's zone dead, the second chase must be
// answered from the coalescing memo — same findings, fewer packets.
TEST(ChaosCoalescing, DuplicateGluelessNsIsCoalescedOnFailure) {
  const auto build = [](bool coalesce) {
    auto clock = std::make_shared<sim::Clock>();
    auto network = std::make_shared<sim::Network>(clock);

    auto root = std::make_shared<zone::Zone>(dns::Name{});
    dns::SoaRdata soa;
    soa.mname = dns::Name::of("a.root-servers.net");
    root->add(dns::Name{}, dns::RRType::SOA, soa);
    root->add(dns::Name{}, dns::RRType::NS,
              dns::NsRdata{dns::Name::of("a.root-servers.net")});
    root->add(dns::Name::of("a.root-servers.net"), dns::RRType::A,
              dns::ARdata{*dns::Ipv4Address::parse("198.41.0.4")});
    // dead.test: delegated to an address nothing is attached to.
    root->add(dns::Name::of("dead.test"), dns::RRType::NS,
              dns::NsRdata{dns::Name::of("ns.dead.test")});
    root->add(dns::Name::of("ns.dead.test"), dns::RRType::A,
              dns::ARdata{*dns::Ipv4Address::parse("203.0.113.66")});
    // broken.test: the same glueless nameserver name, listed twice.
    root->add(dns::Name::of("broken.test"), dns::RRType::NS,
              dns::NsRdata{dns::Name::of("gone.dead.test")});
    root->add(dns::Name::of("broken.test"), dns::RRType::NS,
              dns::NsRdata{dns::Name::of("gone.dead.test")});
    const auto root_keys = zone::make_zone_keys(dns::Name{});
    zone::sign_zone(*root, root_keys, {});
    auto root_server = std::make_shared<server::AuthServer>();
    root_server->add_zone(root);
    network->attach(sim::NodeAddress::of("198.41.0.4"),
                    root_server->endpoint());

    ResolverOptions options;
    options.cache.enabled = false;  // so no cache layer masks the memo
    options.coalesce_queries = coalesce;
    RetryPolicy retry;
    retry.attempts_per_server = 2;
    options.retry = retry;
    resolver::RecursiveResolver resolver(
        network, resolver::profile_cloudflare(),
        {sim::NodeAddress::of("198.41.0.4")}, root_keys.ksk.dnskey, options);
    const auto outcome =
        resolver.resolve(dns::Name::of("broken.test"), dns::RRType::A);
    return std::tuple{outcome, resolver.hardening_stats(),
                      network->stats().packets_sent};
  };

  const auto [with, with_stats, with_packets] = build(true);
  const auto [without, without_stats, without_packets] = build(false);

  EXPECT_EQ(with.rcode, dns::RCode::SERVFAIL);
  EXPECT_EQ(without.rcode, dns::RCode::SERVFAIL);
  EXPECT_GE(with_stats.coalesced_queries, 1u);
  EXPECT_EQ(without_stats.coalesced_queries, 0u);
  EXPECT_LT(with_packets, without_packets);

  // Classification-neutral: same rcode and the same EDE codes in order.
  ASSERT_EQ(with.errors.size(), without.errors.size());
  for (std::size_t i = 0; i < with.errors.size(); ++i)
    EXPECT_EQ(with.errors[i].code, without.errors[i].code);
}

// A fully scripted Byzantine scenario replays bit-identically for a fixed
// seed — the property the chaos-campaign runner's reproducible report
// stands on.
TEST(ChaosByzantine, FixedSeedReplaysTheSameHostileStoryline) {
  const auto run = [] {
    auto clock = std::make_shared<sim::Clock>();
    auto network = std::make_shared<sim::Network>(clock);
    testbed::Testbed testbed(network);
    const auto child = testbed.server_address("valid").value();
    network->set_latency({.enabled = true, .base_rtt_ms = 20, .jitter_ms = 8,
                          .seed = 0xc4a05});
    auto stats = std::make_shared<sim::ByzantineStats>();
    network->set_mutator(
        child, sim::make_byzantine_mutator(
                   {sim::ByzantineBehavior::fuzz(0.5, 4),
                    sim::ByzantineBehavior::truncation_garbage(0.5)},
                   0xd1ce, stats));
    auto resolver = testbed.make_resolver(resolver::profile_cloudflare());

    std::ostringstream transcript;
    for (int i = 0; i < 3; ++i) {
      const auto outcome = resolver.resolve(
          dns::Name::of("valid.extended-dns-errors.com"), dns::RRType::A);
      transcript << static_cast<int>(outcome.rcode) << ':';
      for (const auto& error : outcome.errors)
        transcript << static_cast<std::uint16_t>(error.code) << ',';
      transcript << ';';
    }
    const auto& h = resolver.hardening_stats();
    transcript << h.rejected_qid_mismatch << '/' << h.rejected_question_mismatch
               << '/' << h.scrubbed_records << '/' << stats->mutations_applied;
    return transcript.str();
  };
  const auto first = run();
  EXPECT_EQ(first, run());
  EXPECT_FALSE(first.empty());
}

// A forwarder in front of a recursive endpoint rides out probabilistic
// loss on the upstream path by retransmitting on its backoff schedule.
TEST(ChaosForwarder, RetransmissionDefeatsProbabilisticLoss) {
  auto clock = std::make_shared<sim::Clock>();
  auto network = std::make_shared<sim::Network>(clock);
  testbed::Testbed testbed(network);

  const auto upstream_addr = sim::NodeAddress::of("198.51.200.53");
  auto recursive = std::make_shared<RecursiveResolver>(
      testbed.make_resolver(resolver::profile_cloudflare()));
  network->attach(upstream_addr, resolver::make_resolver_endpoint(recursive));

  // Half the datagrams toward the upstream vanish (seeded, deterministic).
  network->inject_fault(upstream_addr, sim::Fault::loss(0.5));

  resolver::ForwarderOptions options;
  options.retry.attempts_per_server = 8;
  resolver::Forwarder forwarder(network, sim::NodeAddress::of("198.51.200.99"),
                                {upstream_addr}, options);

  const auto query =
      dns::make_query(77, dns::Name::of("valid.extended-dns-errors.com"),
                      dns::RRType::A, /*recursion_desired=*/true);
  const auto response = forwarder.handle(query);
  EXPECT_EQ(response.header.rcode, dns::RCode::NOERROR);
  EXPECT_FALSE(response.answer.empty());

  // network -> endpoint -> recursive -> network is an ownership cycle;
  // detach the endpoint so LeakSanitizer sees everything reclaimed.
  network->detach(upstream_addr);
}

}  // namespace
