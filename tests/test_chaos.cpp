// Chaos tests: the adversarial transport driving the resolver's adaptive
// retry machinery end to end. A scripted fault window kills the control
// domain's authority mid-scenario and the EDE diagnosis must progress
// exactly the way the paper's lame-delegation story predicts: connectivity
// codes (22/23) while the server is down, Stale Answer (3) while the infra
// cache holds the dead server down without spending packets on it, and a
// clean validated NOERROR after recovery. Everything runs under the seeded
// latency model, so the whole storyline is deterministic and the
// inter-attempt spacing of the exponential backoff is assertable.
#include <gtest/gtest.h>

#include <sstream>

#include "edns/edns.hpp"
#include "resolver/forwarder.hpp"
#include "scan/report.hpp"
#include "scan/scanner.hpp"
#include "scan/world.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace ede;
using resolver::RecursiveResolver;
using resolver::ResolverOptions;
using resolver::RetryPolicy;

class ChaosTest : public ::testing::Test {
 protected:
  ChaosTest()
      : clock_(std::make_shared<sim::Clock>()),
        network_(std::make_shared<sim::Network>(clock_)),
        testbed_(network_) {
    child_addr_ = testbed_.server_address("valid").value();
  }

  RecursiveResolver make(ResolverOptions options = {}) {
    return testbed_.make_resolver(resolver::profile_cloudflare(), options);
  }

  static dns::Name valid_name() {
    return dns::Name::of("valid.extended-dns-errors.com");
  }

  static bool has_code(const resolver::Outcome& outcome, edns::EdeCode code) {
    for (const auto& error : outcome.errors)
      if (error.code == code) return true;
    return false;
  }

  std::vector<sim::Network::SendRecord> sends_to_child() const {
    std::vector<sim::Network::SendRecord> out;
    for (const auto& record : network_->send_log())
      if (record.destination == child_addr_) out.push_back(record);
    return out;
  }

  std::shared_ptr<sim::Clock> clock_;
  std::shared_ptr<sim::Network> network_;
  testbed::Testbed testbed_;
  sim::NodeAddress child_addr_;
};

// The headline scenario from the issue: healthy -> scripted outage ->
// hold-down -> recovery, with the EDE progression 22/23 -> 3 -> none.
TEST_F(ChaosTest, ScriptedOutageWalksTheEdeProgression) {
  network_->set_latency({.enabled = true, .base_rtt_ms = 20, .jitter_ms = 8,
                         .seed = 0xc4a05});

  ResolverOptions options;
  RetryPolicy retry;
  retry.initial_timeout_ms = 400;
  retry.backoff_factor = 2.0;
  retry.attempts_per_server = 4;  // enough probes to watch the backoff grow
  options.retry = retry;
  auto resolver = make(options);

  // Act 1 — healthy: a validated answer lands in the cache.
  const auto healthy = resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_EQ(healthy.rcode, dns::RCode::NOERROR);
  EXPECT_EQ(healthy.security, dnssec::Security::Secure);
  EXPECT_TRUE(healthy.errors.empty());

  // Act 2 — the authority dies for a scripted window 4000 s from now
  // (past the 3600 s TTLs, so resolution must go upstream into it).
  const auto t0 = clock_->now();
  network_->fail_between(child_addr_, t0 + 4000, t0 + 8000);
  clock_->set(t0 + 4000);
  network_->record_sends(true);

  // An uncached qtype forces the resolver upstream into the outage: every
  // probe times out and the connectivity codes surface.
  const auto down = resolver.resolve(valid_name(), dns::RRType::TXT);
  EXPECT_EQ(down.rcode, dns::RCode::SERVFAIL);
  EXPECT_TRUE(has_code(down, edns::EdeCode::NoReachableAuthority));  // 22
  EXPECT_TRUE(has_code(down, edns::EdeCode::NetworkError));          // 23

  // The retransmission schedule to the dead server backs off
  // exponentially: consecutive gaps strictly increase, each doubling.
  const auto probes = sends_to_child();
  ASSERT_GE(probes.size(), 4u);
  EXPECT_FALSE(probes[0].retransmission);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_TRUE(probes[i].retransmission);
    EXPECT_GT(probes[i].at_ms, probes[i - 1].at_ms);
  }
  const auto gap1 = probes[1].at_ms - probes[0].at_ms;
  const auto gap2 = probes[2].at_ms - probes[1].at_ms;
  const auto gap3 = probes[3].at_ms - probes[2].at_ms;
  EXPECT_EQ(gap1, 400u);
  EXPECT_EQ(gap2, 2 * gap1);
  EXPECT_EQ(gap3, 2 * gap2);
  EXPECT_GE(network_->stats().retransmits, 3u);

  // Four consecutive timeouts passed the hold-down threshold.
  EXPECT_GE(resolver.infra().stats().holddowns_started, 1u);

  // Act 3 — hold-down: the A record is served stale (EDE 3) and not one
  // packet is spent probing the held-down authority.
  network_->record_sends(true);  // resets the log
  const auto stale = resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_EQ(stale.rcode, dns::RCode::NOERROR);
  EXPECT_TRUE(has_code(stale, edns::EdeCode::StaleAnswer));    // 3
  EXPECT_TRUE(has_code(stale, edns::EdeCode::NetworkError));   // 23 preserved
  EXPECT_TRUE(sends_to_child().empty());
  EXPECT_GE(resolver.infra().stats().holddown_skips, 1u);

  // Act 4 — recovery: past the fault window and the hold-down, the next
  // resolution walks the hierarchy again and validates cleanly.
  clock_->set(t0 + 9000);
  const auto recovered = resolver.resolve(valid_name(), dns::RRType::A);
  EXPECT_EQ(recovered.rcode, dns::RCode::NOERROR);
  EXPECT_EQ(recovered.security, dnssec::Security::Secure);
  EXPECT_TRUE(recovered.errors.empty());
}

// The same scenario replayed on a fresh stack with the same seed produces
// a bit-identical transcript: rcodes, EDE codes and probe timestamps.
TEST(ChaosDeterminism, FixedSeedReplaysTheSameStoryline) {
  const auto run = [] {
    auto clock = std::make_shared<sim::Clock>();
    auto network = std::make_shared<sim::Network>(clock);
    testbed::Testbed testbed(network);
    const auto child = testbed.server_address("valid").value();
    network->set_latency({.enabled = true, .base_rtt_ms = 20, .jitter_ms = 8,
                          .seed = 0xc4a05});
    ResolverOptions options;
    RetryPolicy retry;
    retry.attempts_per_server = 4;
    options.retry = retry;
    auto resolver =
        testbed.make_resolver(resolver::profile_cloudflare(), options);

    std::ostringstream transcript;
    const auto log = [&](const resolver::Outcome& outcome) {
      transcript << static_cast<int>(outcome.rcode) << ':';
      for (const auto& error : outcome.errors)
        transcript << static_cast<std::uint16_t>(error.code) << ',';
      transcript << ';';
    };

    network->record_sends(true);
    log(resolver.resolve(dns::Name::of("valid.extended-dns-errors.com"),
                         dns::RRType::A));
    const auto t0 = clock->now();
    network->fail_between(child, t0 + 4000, t0 + 8000);
    clock->set(t0 + 4000);
    log(resolver.resolve(dns::Name::of("valid.extended-dns-errors.com"),
                         dns::RRType::TXT));
    log(resolver.resolve(dns::Name::of("valid.extended-dns-errors.com"),
                         dns::RRType::A));
    clock->set(t0 + 9000);
    log(resolver.resolve(dns::Name::of("valid.extended-dns-errors.com"),
                         dns::RRType::A));
    for (const auto& record : network->send_log()) {
      transcript << record.at_ms << '@' << record.destination.to_string()
                 << (record.retransmission ? "R" : "") << ' ';
    }
    return transcript.str();
  };

  const auto first = run();
  const auto second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// The acceptance bar for the infrastructure cache: on a population where
// the same dead provider addresses serve many lame delegations, enabling
// it measurably cuts packets while the per-code EDE classification stays
// byte-for-byte identical.
TEST(ChaosScan, InfraCacheSavesPacketsWithoutChangingTheDiagnosis) {
  // Large enough that the 15-slot Timeout pool and 64-slot Unroutable
  // pool are each hit several times per address — the repeated-lame
  // traffic the infra cache exists to absorb.
  scan::PopulationConfig config;
  config.total_domains = 10'000;
  config.seed = 7;
  const auto population = scan::generate_population(config);

  const auto run = [&](bool infra_enabled) {
    auto clock = std::make_shared<sim::Clock>();
    auto network = std::make_shared<sim::Network>(clock);
    scan::ScanWorld world(network, population);
    ResolverOptions options;
    options.infra.enabled = infra_enabled;
    auto resolver =
        world.make_resolver(resolver::profile_cloudflare(), options);
    world.prewarm(resolver);
    return scan::Scanner().run(resolver, population);
  };

  const auto with_infra = run(true);
  const auto without_infra = run(false);

  // Identical classification, domain for domain.
  ASSERT_EQ(with_infra.per_code.size(), without_infra.per_code.size());
  for (const auto& [code, stats] : with_infra.per_code) {
    const auto it = without_infra.per_code.find(code);
    ASSERT_NE(it, without_infra.per_code.end()) << "code " << code;
    EXPECT_EQ(stats.domains, it->second.domains) << "code " << code;
  }
  EXPECT_EQ(with_infra.codes_by_category, without_infra.codes_by_category);
  EXPECT_EQ(with_infra.domains_with_ede, without_infra.domains_with_ede);
  EXPECT_EQ(with_infra.servfail_domains, without_infra.servfail_domains);
  EXPECT_EQ(with_infra.lame_union, without_infra.lame_union);

  // Measurably cheaper: held-down dead servers stop eating retransmissions.
  EXPECT_GT(with_infra.transport.holddown_skips, 0u);
  EXPECT_EQ(without_infra.transport.holddown_skips, 0u);
  EXPECT_LT(with_infra.transport.packets_sent,
            without_infra.transport.packets_sent);
  EXPECT_LT(with_infra.transport.retransmits,
            without_infra.transport.retransmits);
}

// A forwarder in front of a recursive endpoint rides out probabilistic
// loss on the upstream path by retransmitting on its backoff schedule.
TEST(ChaosForwarder, RetransmissionDefeatsProbabilisticLoss) {
  auto clock = std::make_shared<sim::Clock>();
  auto network = std::make_shared<sim::Network>(clock);
  testbed::Testbed testbed(network);

  const auto upstream_addr = sim::NodeAddress::of("198.51.200.53");
  auto recursive = std::make_shared<RecursiveResolver>(
      testbed.make_resolver(resolver::profile_cloudflare()));
  network->attach(upstream_addr, resolver::make_resolver_endpoint(recursive));

  // Half the datagrams toward the upstream vanish (seeded, deterministic).
  network->inject_fault(upstream_addr, sim::Fault::loss(0.5));

  resolver::ForwarderOptions options;
  options.retry.attempts_per_server = 8;
  resolver::Forwarder forwarder(network, sim::NodeAddress::of("198.51.200.99"),
                                {upstream_addr}, options);

  const auto query =
      dns::make_query(77, dns::Name::of("valid.extended-dns-errors.com"),
                      dns::RRType::A, /*recursion_desired=*/true);
  const auto response = forwarder.handle(query);
  EXPECT_EQ(response.header.rcode, dns::RCode::NOERROR);
  EXPECT_FALSE(response.answer.empty());

  // network -> endpoint -> recursive -> network is an ownership cycle;
  // detach the endpoint so LeakSanitizer sees everything reclaimed.
  network->detach(upstream_addr);
}

}  // namespace
