// White-box testbed tests: each mutation leaves exactly the defect its
// test case names, including the tag-preservation properties that keep the
// validator's diagnosis precise.
#include <gtest/gtest.h>

#include "dnssec/keys.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace ede;
using dns::DnskeyRdata;
using dns::Name;
using dns::RRType;

class TestbedZones : public ::testing::Test {
 protected:
  TestbedZones()
      : network_(std::make_shared<sim::Network>(
            std::make_shared<sim::Clock>())),
        testbed_(network_) {}

  std::shared_ptr<const zone::Zone> zone(std::string_view label) {
    auto z = testbed_.child_zone(label);
    EXPECT_NE(z, nullptr) << label;
    return z;
  }

  const DnskeyRdata* key(const zone::Zone& z, std::uint16_t flags) {
    const auto* rrset = z.find(z.origin(), RRType::DNSKEY);
    if (rrset == nullptr) return nullptr;
    for (const auto& rd : rrset->rdatas) {
      const auto* k = std::get_if<DnskeyRdata>(&rd);
      if (k != nullptr && (k->flags & ~DnskeyRdata::kZoneKeyFlag) ==
                              (flags & ~DnskeyRdata::kZoneKeyFlag) &&
          (flags == 0 || k->flags == flags))
        return k;
    }
    return nullptr;
  }

  std::shared_ptr<sim::Network> network_;
  testbed::Testbed testbed_;
};

TEST_F(TestbedZones, SixtyThreeCases) {
  EXPECT_EQ(testbed_.cases().size(), 63u);
  int group_counts[9] = {};
  for (const auto& spec : testbed_.cases()) ++group_counts[spec.group];
  EXPECT_EQ(group_counts[1], 1);   // control
  EXPECT_EQ(group_counts[2], 7);   // DS
  EXPECT_EQ(group_counts[3], 8);   // RRSIG
  EXPECT_EQ(group_counts[4], 9);   // NSEC3
  EXPECT_EQ(group_counts[5], 14);  // DNSKEY
  EXPECT_EQ(group_counts[6], 10);  // AAAA glue
  EXPECT_EQ(group_counts[7], 8);   // A glue
  EXPECT_EQ(group_counts[8], 6);   // other
}

TEST_F(TestbedZones, ValidZoneIsFullySigned) {
  const auto z = zone("valid");
  EXPECT_FALSE(z->signatures(z->origin(), RRType::A).empty());
  EXPECT_FALSE(z->signatures(z->origin(), RRType::DNSKEY).empty());
  EXPECT_NE(z->find(z->origin(), RRType::NSEC3PARAM), nullptr);
}

TEST_F(TestbedZones, RrsigRemoveAVariantIsSurgical) {
  const auto z = zone("rrsig-no-a");
  EXPECT_TRUE(z->signatures(z->origin(), RRType::A).empty());
  EXPECT_FALSE(z->signatures(z->origin(), RRType::SOA).empty());
  EXPECT_FALSE(z->signatures(z->origin(), RRType::DNSKEY).empty());
}

TEST_F(TestbedZones, RrsigRemoveAllLeavesNothing) {
  const auto z = zone("rrsig-no-all");
  for (const auto& name : z->names()) {
    EXPECT_EQ(z->find(name, RRType::RRSIG), nullptr) << name.to_string();
  }
}

TEST_F(TestbedZones, ExpiredTimesAreInThePast) {
  const auto z = zone("rrsig-exp-all");
  const auto sigs = z->signatures(z->origin(), RRType::DNSKEY);
  ASSERT_FALSE(sigs.empty());
  for (const auto& sig : sigs) {
    EXPECT_LT(sig.expiration, sim::kDefaultNow);
    EXPECT_LT(sig.inception, sig.expiration);
  }
}

TEST_F(TestbedZones, ExpBeforeValidInvertsTheWindow) {
  const auto z = zone("rrsig-exp-before-all");
  for (const auto& sig : z->signatures(z->origin(), RRType::A)) {
    EXPECT_GT(sig.inception, sig.expiration);
  }
}

TEST_F(TestbedZones, ZskCorruptionPreservesTheKeyTag) {
  const auto pristine = dnssec::make_zsk(
      testbed_.child_origin(testbed_.cases()[26]), 8);  // bad-zsk
  ASSERT_EQ(testbed_.cases()[26].label, "bad-zsk");
  const auto z = zone("bad-zsk");
  const auto* mutated = key(*z, DnskeyRdata::kZskFlags);
  ASSERT_NE(mutated, nullptr);
  EXPECT_NE(mutated->public_key, pristine.dnskey.public_key);
  EXPECT_EQ(dnssec::key_tag(*mutated), pristine.tag());
}

TEST_F(TestbedZones, ZoneBitClearingPreservesTheKeyTag) {
  const auto pristine = dnssec::make_zsk(
      testbed_.child_origin(testbed_.cases()[33]), 8);  // no-dnskey-256
  ASSERT_EQ(testbed_.cases()[33].label, "no-dnskey-256");
  const auto z = zone("no-dnskey-256");
  const auto* mutated = key(*z, 0);  // flags 0 after clearing
  ASSERT_NE(mutated, nullptr);
  EXPECT_FALSE(mutated->is_zone_key());
  EXPECT_EQ(dnssec::key_tag(*mutated), pristine.tag());
}

TEST_F(TestbedZones, WrongAlgoFieldPreservesTheKeyTag) {
  const auto pristine = dnssec::make_zsk(
      testbed_.child_origin(testbed_.cases()[36]), 8);  // bad-zsk-algo
  ASSERT_EQ(testbed_.cases()[36].label, "bad-zsk-algo");
  const auto z = zone("bad-zsk-algo");
  const auto* mutated = key(*z, DnskeyRdata::kZskFlags);
  ASSERT_NE(mutated, nullptr);
  EXPECT_EQ(mutated->algorithm, 13);
  EXPECT_EQ(dnssec::key_tag(*mutated), pristine.tag());
}

TEST_F(TestbedZones, KeyRemovalsRemoveTheRightKey) {
  const auto no_zsk = zone("no-zsk");
  EXPECT_EQ(key(*no_zsk, DnskeyRdata::kZskFlags), nullptr);
  EXPECT_NE(key(*no_zsk, DnskeyRdata::kKskFlags), nullptr);
  const auto no_ksk = zone("no-ksk");
  EXPECT_NE(key(*no_ksk, DnskeyRdata::kZskFlags), nullptr);
  EXPECT_EQ(key(*no_ksk, DnskeyRdata::kKskFlags), nullptr);
}

TEST_F(TestbedZones, KskRrsigRemovalLeavesZskSignature) {
  const auto z = zone("no-rrsig-ksk");
  const auto sigs = z->signatures(z->origin(), RRType::DNSKEY);
  ASSERT_EQ(sigs.size(), 1u);
  const auto zsk = dnssec::make_zsk(z->origin(), 8);
  EXPECT_EQ(sigs.front().key_tag, zsk.tag());
}

TEST_F(TestbedZones, Nsec3MutationsTouchOnlyTheChain) {
  const auto z = zone("nsec3-missing");
  bool any_nsec3 = false;
  for (const auto& name : z->names())
    any_nsec3 |= z->find(name, RRType::NSEC3) != nullptr;
  EXPECT_FALSE(any_nsec3);
  EXPECT_NE(z->find(z->origin(), RRType::NSEC3PARAM), nullptr);
  EXPECT_FALSE(z->signatures(z->origin(), RRType::SOA).empty());
}

TEST_F(TestbedZones, SaltMutationDivergesFromParam) {
  const auto z = zone("bad-nsec3param-salt");
  const auto* param_set = z->find(z->origin(), RRType::NSEC3PARAM);
  ASSERT_NE(param_set, nullptr);
  const auto& param =
      std::get<dns::Nsec3ParamRdata>(param_set->rdatas.front());
  for (const auto& name : z->names()) {
    const auto* rrset = z->find(name, RRType::NSEC3);
    if (rrset == nullptr) continue;
    for (const auto& rd : rrset->rdatas) {
      EXPECT_NE(std::get<dns::Nsec3Rdata>(rd).salt, param.salt);
    }
  }
}

TEST_F(TestbedZones, GlueCasesPublishNoDsAndAreUnsigned) {
  for (const auto& spec : testbed_.cases()) {
    if (spec.group != 6 && spec.group != 7) continue;
    const auto z = zone(spec.label);
    EXPECT_EQ(z->find(z->origin(), RRType::DNSKEY), nullptr) << spec.label;
  }
}

TEST_F(TestbedZones, QueryNamesMatchTheCaseSemantics) {
  for (const auto& spec : testbed_.cases()) {
    const auto qname = testbed_.query_name(spec);
    if (spec.query_nonexistent) {
      EXPECT_EQ(qname.labels().front(), "nonexistent") << spec.label;
    } else {
      EXPECT_EQ(qname, testbed_.child_origin(spec)) << spec.label;
    }
    EXPECT_TRUE(qname.is_subdomain_of(testbed_.base_domain()));
  }
}

TEST_F(TestbedZones, StandbyMutationAddsUnsignedSep) {
  // Not part of the 63 cases, but the scan depends on it: apply directly.
  const Name origin = Name::of("standby.test");
  zone::Zone z(origin);
  dns::SoaRdata soa;
  soa.mname = origin;
  soa.rname = origin;
  z.add(origin, RRType::SOA, soa);
  z.add(origin, RRType::A, dns::ARdata{*dns::Ipv4Address::parse("93.184.216.1")});
  const auto keys = zone::make_zone_keys(origin);
  zone::SigningPolicy policy;
  zone::sign_zone(z, keys, policy);
  testbed::apply_mutation(z, keys, policy,
                          testbed::Mutation::StandbyKskUnsigned);

  const auto* dnskey = z.find(origin, RRType::DNSKEY);
  ASSERT_NE(dnskey, nullptr);
  EXPECT_EQ(dnskey->rdatas.size(), 3u);  // KSK + ZSK + stand-by
  // The active KSK still covers the RRset; the stand-by does not.
  const auto sigs = z.signatures(origin, RRType::DNSKEY);
  for (const auto& sig : sigs) {
    EXPECT_NE(sig.key_tag,
              dnssec::make_key(origin, "standby-ksk",
                               DnskeyRdata::kKskFlags, 8)
                  .tag());
  }
}

}  // namespace
