// Malformed-packet corpus: every wire the Byzantine mutators can emit —
// plus systematic truncation sweeps and hand-built compression-pointer
// traps — must flow through Message::parse without crashing, hanging or
// reading out of bounds. The suite is intentionally heavy on iteration
// counts and runs in the ASan+UBSan verify tree, where "parse returned an
// error" and "parse returned a value" are both passes and anything else
// (OOB read, signed overflow, runaway loop) aborts the binary.
#include <gtest/gtest.h>

#include "crypto/rng.hpp"
#include "dnscore/message.hpp"
#include "edns/edns.hpp"
#include "simnet/byzantine.hpp"

namespace {

using namespace ede;

/// A realistic, compression-heavy response: question + answer + authority
/// + additional (with OPT), all sharing suffixes so truncation cuts
/// through pointers mid-flight.
dns::Message sample_response() {
  const auto owner = dns::Name::of("host.child.example-zone.test");
  dns::Message m = dns::make_query(0x4242, owner, dns::RRType::A);
  m.header.qr = true;
  m.header.aa = true;
  m.answer.push_back({owner, dns::RRType::A, dns::RRClass::IN, 3600,
                      dns::ARdata{dns::Ipv4Address{{192, 0, 2, 1}}}});
  m.answer.push_back(
      {owner, dns::RRType::TXT, dns::RRClass::IN, 3600,
       dns::TxtRdata{{"a moderately long txt string for padding"}}});
  m.authority.push_back(
      {dns::Name::of("child.example-zone.test"), dns::RRType::NS,
       dns::RRClass::IN, 86'400,
       dns::NsRdata{dns::Name::of("ns1.child.example-zone.test")}});
  m.additional.push_back(
      {dns::Name::of("ns1.child.example-zone.test"), dns::RRType::A,
       dns::RRClass::IN, 86'400,
       dns::ARdata{dns::Ipv4Address{{192, 0, 2, 53}}}});
  m.additional.push_back({dns::Name{}, dns::RRType::OPT, dns::RRClass::IN,
                          static_cast<std::uint32_t>(1232) << 16,
                          dns::OptRdata{}});
  return m;
}

crypto::Bytes sample_query_wire() {
  return dns::make_query(0x4242, dns::Name::of("host.child.example-zone.test"),
                         dns::RRType::A)
      .serialize();
}

/// Drive one behavior's mutator over the sample exchange `rounds` times
/// (fresh seed each round) and parse whatever comes out. Returns how many
/// outputs parsed successfully — callers assert corpus-specific
/// expectations on it; the real test is that nothing crashes.
std::size_t parse_mutated_corpus(sim::ByzantineBehavior behavior,
                                 std::size_t rounds) {
  const auto query = sample_query_wire();
  const auto response = sample_response().serialize();
  std::size_t parsed_ok = 0;
  for (std::size_t seed = 0; seed < rounds; ++seed) {
    auto mutator = sim::make_byzantine_mutator({behavior}, 0x900d + seed);
    sim::MutateContext ctx;
    ctx.now = 1'700'000'000;
    const auto wire = mutator(query, response, ctx);
    if (!wire) continue;  // swallowed — nothing on the wire to parse
    const auto result = dns::Message::parse(*wire);
    if (result) ++parsed_ok;
  }
  return parsed_ok;
}

TEST(MalformedCorpus, EveryMutatorOutputParsesOrFailsCleanly) {
  constexpr std::size_t kRounds = 200;
  // Structure-preserving mutations stay parseable…
  EXPECT_EQ(parse_mutated_corpus(sim::ByzantineBehavior::wrong_qid(), kRounds),
            kRounds);
  EXPECT_EQ(parse_mutated_corpus(sim::ByzantineBehavior::wrong_question(),
                                 kRounds),
            kRounds);
  EXPECT_EQ(parse_mutated_corpus(sim::ByzantineBehavior::spoof(), kRounds),
            kRounds);
  EXPECT_EQ(parse_mutated_corpus(
                sim::ByzantineBehavior::spoof(1.0, /*qid_known=*/true),
                kRounds),
            kRounds);
  EXPECT_EQ(parse_mutated_corpus(sim::ByzantineBehavior::bailiwick_stuff(),
                                 kRounds),
            kRounds);
  // …structure-destroying ones must never parse…
  EXPECT_EQ(parse_mutated_corpus(sim::ByzantineBehavior::pointer_loop(),
                                 kRounds),
            0u);
  // …and the rest may land either way depending on where the bytes fall,
  // as long as nothing crashes (the sanitizers arbitrate).
  parse_mutated_corpus(sim::ByzantineBehavior::truncation_garbage(), kRounds);
  parse_mutated_corpus(sim::ByzantineBehavior::oversize(1.0, 6000), kRounds);
  parse_mutated_corpus(sim::ByzantineBehavior::fuzz(1.0, 16), kRounds);
  parse_mutated_corpus(sim::ByzantineBehavior::slow_drip(), kRounds);
}

/// The same exchange but with the query carrying an OPT — the EDNS
/// mutators that react to the client's EDNS state (drop, FORMERR,
/// BADVERS) gate on it.
crypto::Bytes sample_edns_query_wire() {
  auto q = dns::make_query(0x4242,
                           dns::Name::of("host.child.example-zone.test"),
                           dns::RRType::A);
  q.additional.push_back({dns::Name{}, dns::RRType::OPT,
                          static_cast<dns::RRClass>(1232), 0x8000u,
                          dns::OptRdata{}});
  return q.serialize();
}

std::size_t parse_edns_mutated_corpus(sim::ByzantineBehavior behavior,
                                      std::size_t rounds) {
  const auto query = sample_edns_query_wire();
  const auto response = sample_response().serialize();
  std::size_t parsed_ok = 0;
  for (std::size_t seed = 0; seed < rounds; ++seed) {
    auto mutator = sim::make_byzantine_mutator({behavior}, 0xed25 + seed);
    sim::MutateContext ctx;
    ctx.now = 1'700'000'000;
    const auto wire = mutator(query, response, ctx);
    if (!wire) continue;
    if (dns::Message::parse(*wire)) ++parsed_ok;
  }
  return parsed_ok;
}

// The RFC 6891 zoo mutators: every hostile-EDNS rewrite must stay
// parseable (the fallback machinery needs to *read* the rejection to
// react to it) — except the drop, which by definition puts nothing on
// the wire. A crash anywhere here would abort a resolution that a
// plain-DNS retry could have saved.
TEST(MalformedCorpus, EdnsMutatorOutputsStayParseable) {
  constexpr std::size_t kRounds = 200;
  EXPECT_EQ(parse_edns_mutated_corpus(sim::ByzantineBehavior::edns_drop(),
                                      kRounds),
            0u);
  EXPECT_EQ(parse_edns_mutated_corpus(sim::ByzantineBehavior::edns_formerr(),
                                      kRounds),
            kRounds);
  EXPECT_EQ(parse_edns_mutated_corpus(
                sim::ByzantineBehavior::edns_strip_opt(), kRounds),
            kRounds);
  EXPECT_EQ(parse_edns_mutated_corpus(
                sim::ByzantineBehavior::edns_echo_extra(), kRounds),
            kRounds);
  EXPECT_EQ(parse_edns_mutated_corpus(sim::ByzantineBehavior::edns_badvers(),
                                      kRounds),
            kRounds);
  EXPECT_EQ(parse_edns_mutated_corpus(
                sim::ByzantineBehavior::edns_buffer_lie(), kRounds),
            kRounds);
  EXPECT_EQ(parse_edns_mutated_corpus(sim::ByzantineBehavior::edns_garble(),
                                      kRounds),
            kRounds);
}

/// A hand-built datagram: empty question, `opts` OPT records whose rdata
/// is exactly `rdatas[i]`, raw bytes straight onto the wire with no codec
/// in between.
crypto::Bytes raw_opt_datagram(const std::vector<crypto::Bytes>& rdatas) {
  crypto::Bytes wire(12, 0);
  wire[2] = 0x80;  // QR
  wire[11] = static_cast<std::uint8_t>(rdatas.size());  // arcount
  for (const auto& rdata : rdatas) {
    wire.push_back(0x00);                           // root owner
    wire.insert(wire.end(), {0x00, 0x29});          // TYPE = OPT
    wire.insert(wire.end(), {0x04, 0xd0});          // CLASS = 1232
    wire.insert(wire.end(), {0x00, 0x00, 0x00, 0x00});  // TTL
    wire.push_back(static_cast<std::uint8_t>(rdata.size() >> 8));
    wire.push_back(static_cast<std::uint8_t>(rdata.size() & 0xff));
    wire.insert(wire.end(), rdata.begin(), rdata.end());
  }
  return wire;
}

// Random OPT rdata — truncated option headers, lying lengths, pure noise —
// must never fail the message parse (the hardened decoder captures the
// unparseable tail instead), and whatever parsed must re-serialize to the
// exact input bytes: option-list prefix plus verbatim tail.
TEST(MalformedCorpus, OptRdataFuzzParsesAndRoundTrips) {
  crypto::Xoshiro256 rng(0x0b57);
  for (std::size_t round = 0; round < 400; ++round) {
    crypto::Bytes rdata(rng.below(40));
    for (auto& b : rdata) b = static_cast<std::uint8_t>(rng.below(256));
    const auto wire = raw_opt_datagram({rdata});
    const auto parsed = dns::Message::parse(wire);
    ASSERT_TRUE(parsed.ok()) << "round " << round;
    EXPECT_EQ(parsed.value().serialize(), wire) << "round " << round;
  }
}

// Multi-OPT datagrams (RFC 6891 §6.1.1 forbids them; hostile authorities
// send them anyway): they must parse, every OPT must be visible to the
// duplicate-OPT detector, and fuzzed rdata in any of them must not change
// that.
TEST(MalformedCorpus, MultiOptDatagramsParseAndAreCountable) {
  crypto::Xoshiro256 rng(0xd0b1);
  for (std::size_t round = 0; round < 200; ++round) {
    const std::size_t count = 2 + rng.below(3);
    std::vector<crypto::Bytes> rdatas(count);
    for (auto& rdata : rdatas) {
      rdata.resize(rng.below(24));
      for (auto& b : rdata) b = static_cast<std::uint8_t>(rng.below(256));
    }
    const auto wire = raw_opt_datagram(rdatas);
    const auto parsed = dns::Message::parse(wire);
    ASSERT_TRUE(parsed.ok()) << "round " << round;
    EXPECT_EQ(edns::opt_count(parsed.value()), count) << "round " << round;
  }
}

// Every prefix of a valid message — a datagram cut anywhere, including
// mid-pointer and mid-rdata — parses or errors without touching memory
// past the buffer.
TEST(MalformedCorpus, TruncationSweepNeverCrashes) {
  const auto wire = sample_response().serialize();
  ASSERT_GT(wire.size(), 12u);
  std::size_t parsed_ok = 0;
  for (std::size_t len = 0; len <= wire.size(); ++len) {
    const crypto::Bytes prefix(wire.begin(), wire.begin() + len);
    const auto result = dns::Message::parse(prefix);
    if (result) ++parsed_ok;
  }
  // Only the full message (and possibly a trailing-OPT-less prefix) can
  // parse; certainly not most prefixes.
  EXPECT_GE(parsed_ok, 1u);
  EXPECT_LT(parsed_ok, wire.size() / 2);
}

// parse_into with a reused scratch message across the whole corpus: the
// arena path must be exactly as robust as the allocating path.
TEST(MalformedCorpus, ReusedScratchMessageSurvivesTheCorpus) {
  const auto query = sample_query_wire();
  const auto response = sample_response().serialize();
  dns::Message scratch;
  for (std::size_t seed = 0; seed < 100; ++seed) {
    auto mutator = sim::make_byzantine_mutator(
        {sim::ByzantineBehavior::fuzz(1.0, 24)}, seed);
    sim::MutateContext ctx;
    ctx.now = 1'700'000'000;
    const auto wire = mutator(query, response, ctx);
    ASSERT_TRUE(wire.has_value());
    (void)dns::Message::parse_into(*wire, scratch);
  }
}

// Hand-built pointer traps, independent of the mutators: a self-pointer,
// a forward pointer, and a several-hundred-hop strictly-backwards chain.
// All three must be rejected (not followed forever).
TEST(MalformedCorpus, PointerTrapsAreRejected) {
  const auto header = [] {
    crypto::Bytes h(12, 0);
    h[2] = 0x80;  // QR
    h[5] = 1;     // qdcount = 1
    return h;
  };

  {  // name at offset 12 pointing at offset 12
    auto wire = header();
    wire.insert(wire.end(), {0xc0, 0x0c, 0x00, 0x01, 0x00, 0x01});
    EXPECT_FALSE(dns::Message::parse(wire).ok());
  }
  {  // forward pointer (points past itself)
    auto wire = header();
    wire.insert(wire.end(), {0xc0, 0x20, 0x00, 0x01, 0x00, 0x01});
    EXPECT_FALSE(dns::Message::parse(wire).ok());
  }
  {  // 400 pointers, each two bytes back: legal hop by hop, caught by the
     // hop cap
    auto wire = header();
    wire.push_back(0x00);  // root label at offset 12
    std::uint16_t target = 12;
    for (int i = 0; i < 400; ++i) {
      const auto at = static_cast<std::uint16_t>(wire.size());
      wire.push_back(static_cast<std::uint8_t>(0xc0 | (target >> 8)));
      wire.push_back(static_cast<std::uint8_t>(target & 0xff));
      target = at;
    }
    wire.insert(wire.end(), {0x00, 0x01, 0x00, 0x01});
    EXPECT_FALSE(dns::Message::parse(wire).ok());
  }
}

// Pure random-byte datagrams (not derived from any valid message), across
// a spread of sizes.
TEST(MalformedCorpus, RandomBytesNeverCrashTheParser) {
  crypto::Xoshiro256 rng(0xfadedbee);
  for (std::size_t round = 0; round < 500; ++round) {
    const std::size_t size = rng.below(768);
    crypto::Bytes wire(size);
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng.below(256));
    (void)dns::Message::parse(wire);
  }
}

// The mutators themselves are deterministic: one seed, one output.
TEST(MalformedCorpus, MutatorsAreSeedDeterministic) {
  const auto query = sample_query_wire();
  const auto response = sample_response().serialize();
  for (const auto behavior :
       {sim::ByzantineBehavior::wrong_qid(), sim::ByzantineBehavior::spoof(),
        sim::ByzantineBehavior::pointer_loop(),
        sim::ByzantineBehavior::truncation_garbage(),
        sim::ByzantineBehavior::fuzz(1.0, 12)}) {
    const auto run = [&] {
      auto mutator = sim::make_byzantine_mutator({behavior}, 0x5a5a);
      sim::MutateContext ctx;
      ctx.now = 1'700'000'000;
      return mutator(query, response, ctx);
    };
    const auto first = run();
    const auto second = run();
    ASSERT_EQ(first.has_value(), second.has_value());
    if (first) {
      EXPECT_EQ(*first, *second);
    }
  }
}

// Poison detection (the campaign's cache invariant helper) is itself
// robust: garbage never "contains poison", stuffed output always does.
TEST(MalformedCorpus, ContainsPoisonMatchesTheStuffedWire) {
  const auto query = sample_query_wire();
  const auto response = sample_response().serialize();
  EXPECT_FALSE(sim::contains_poison(response));

  auto mutator = sim::make_byzantine_mutator(
      {sim::ByzantineBehavior::bailiwick_stuff()}, 1);
  sim::MutateContext ctx;
  ctx.now = 1'700'000'000;
  const auto stuffed = mutator(query, response, ctx);
  ASSERT_TRUE(stuffed.has_value());
  EXPECT_TRUE(sim::contains_poison(*stuffed));

  crypto::Bytes garbage(40, 0xff);
  EXPECT_FALSE(sim::contains_poison(garbage));
}

}  // namespace
