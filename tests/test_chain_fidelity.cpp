// End-to-end chain fidelity: the full stub → forwarder → recursive →
// authoritative path must deliver exactly the same EDE codes as asking the
// recursive resolver directly — for every one of the 63 testbed cases.
// This is the RFC 8914 "forwarders forward EDE" property at scale.
// Also: scan determinism (same seed, two worlds, identical aggregates).
#include <gtest/gtest.h>

#include "edns/ede.hpp"
#include "edns/edns.hpp"
#include "resolver/forwarder.hpp"
#include "resolver/resolver.hpp"
#include "scan/scanner.hpp"
#include "scan/world.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace ede;

std::vector<std::uint16_t> codes_of(
    const std::vector<edns::ExtendedError>& errors) {
  std::vector<std::uint16_t> codes;
  for (const auto& error : errors)
    codes.push_back(static_cast<std::uint16_t>(error.code));
  std::sort(codes.begin(), codes.end());
  codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
  return codes;
}

TEST(ChainFidelity, ForwarderDeliversIdenticalCodesForAll63Cases) {
  auto network = std::make_shared<sim::Network>(
      std::make_shared<sim::Clock>());
  testbed::Testbed testbed(network);

  // Direct resolver (the reference measurement).
  auto direct = testbed.make_resolver(resolver::profile_cloudflare());
  // The same engine behind a forwarder, over the wire.
  auto upstream = std::make_shared<resolver::RecursiveResolver>(
      testbed.make_resolver(resolver::profile_cloudflare()));
  network->attach(sim::NodeAddress::of("198.51.200.53"),
                  resolver::make_resolver_endpoint(upstream));
  resolver::Forwarder forwarder(
      network, sim::NodeAddress::of("198.51.200.99"),
      {sim::NodeAddress::of("198.51.200.53")}, {});

  for (const auto& spec : testbed.cases()) {
    const auto qname = testbed.query_name(spec);
    direct.flush();
    upstream->flush();
    forwarder.cache().clear();

    const auto expected = direct.resolve(qname, dns::RRType::A);
    const auto via_chain = forwarder.handle(
        dns::make_query(1, qname, dns::RRType::A, true));

    EXPECT_EQ(via_chain.header.rcode, expected.rcode) << spec.label;
    EXPECT_EQ(codes_of(edns::get_extended_errors(via_chain)),
              codes_of(expected.errors))
        << spec.label;
  }
}

TEST(ScanDeterminism, SameSeedSameAggregates) {
  scan::PopulationConfig config;
  config.total_domains = 4000;
  config.seed = 1234;

  auto run_once = [&] {
    const auto population = scan::generate_population(config);
    auto network = std::make_shared<sim::Network>(
        std::make_shared<sim::Clock>());
    scan::ScanWorld world(network, population);
    auto resolver = world.make_resolver(resolver::profile_cloudflare());
    world.prewarm(resolver);
    return scan::Scanner{}.run(resolver, population);
  };

  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.total_domains, b.total_domains);
  EXPECT_EQ(a.domains_with_ede, b.domains_with_ede);
  EXPECT_EQ(a.servfail_domains, b.servfail_domains);
  EXPECT_EQ(a.lame_union, b.lame_union);
  ASSERT_EQ(a.per_code.size(), b.per_code.size());
  for (const auto& [code, stats] : a.per_code) {
    ASSERT_TRUE(b.per_code.count(code)) << code;
    EXPECT_EQ(stats.domains, b.per_code.at(code).domains) << code;
  }
  EXPECT_EQ(a.tranco_hits.size(), b.tranco_hits.size());
}

TEST(ScanDeterminism, DifferentSeedsDifferButStayCalibrated) {
  scan::PopulationConfig config;
  config.total_domains = 8000;

  auto rate_for = [&](std::uint64_t seed) {
    config.seed = seed;
    const auto population = scan::generate_population(config);
    auto network = std::make_shared<sim::Network>(
        std::make_shared<sim::Clock>());
    scan::ScanWorld world(network, population);
    auto resolver = world.make_resolver(resolver::profile_cloudflare());
    world.prewarm(resolver);
    const auto result = scan::Scanner{}.run(resolver, population);
    return static_cast<double>(result.domains_with_ede) /
           static_cast<double>(result.total_domains);
  };

  const double r1 = rate_for(1);
  const double r2 = rate_for(77);
  // Different draws, same calibrated neighbourhood of the paper's 5.8%.
  EXPECT_GT(r1, 0.04);
  EXPECT_LT(r1, 0.09);
  EXPECT_GT(r2, 0.04);
  EXPECT_LT(r2, 0.09);
}

}  // namespace
