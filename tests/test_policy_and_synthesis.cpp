// Tests for the resolver's response-policy layer (EDE 15/16/17 — the
// codes the paper's testbed excludes as "resolver configuration") and for
// RFC 8198 aggressive NSEC caching (EDE 29 Synthesized).
#include <gtest/gtest.h>

#include "edns/ede.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace ede;
using resolver::PolicyAction;
using resolver::PolicyRule;
using resolver::ResolverOptions;

class PolicyAndSynthesis : public ::testing::Test {
 protected:
  PolicyAndSynthesis()
      : network_(std::make_shared<sim::Network>(
            std::make_shared<sim::Clock>())),
        testbed_(network_) {}

  std::shared_ptr<sim::Network> network_;
  testbed::Testbed testbed_;
};

TEST_F(PolicyAndSynthesis, BlockedQueryGetsEde15) {
  ResolverOptions options;
  options.policy.push_back({dns::Name::of("valid.extended-dns-errors.com"),
                            PolicyAction::Block, "on the local blocklist"});
  auto resolver =
      testbed_.make_resolver(resolver::profile_powerdns(), options);
  const auto outcome = resolver.resolve(
      dns::Name::of("valid.extended-dns-errors.com"), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::NXDOMAIN);
  EXPECT_EQ(outcome.upstream_queries, 0);  // never left the resolver
  ASSERT_EQ(outcome.errors.size(), 1u);
  EXPECT_EQ(outcome.errors.front().code, edns::EdeCode::Blocked);
  EXPECT_EQ(outcome.errors.front().extra_text, "on the local blocklist");
}

TEST_F(PolicyAndSynthesis, PolicyAppliesToSubdomains) {
  ResolverOptions options;
  options.policy.push_back({dns::Name::of("extended-dns-errors.com"),
                            PolicyAction::Censor, ""});
  auto resolver = testbed_.make_resolver(resolver::profile_bind(), options);
  const auto outcome = resolver.resolve(
      dns::Name::of("deep.under.valid.extended-dns-errors.com"),
      dns::RRType::A);
  ASSERT_EQ(outcome.errors.size(), 1u);
  EXPECT_EQ(outcome.errors.front().code, edns::EdeCode::Censored);
}

TEST_F(PolicyAndSynthesis, FilterActionMapsToEde17) {
  ResolverOptions options;
  options.policy.push_back({dns::Name::of("valid.extended-dns-errors.com"),
                            PolicyAction::Filter, "family shield"});
  auto resolver = testbed_.make_resolver(resolver::profile_bind(), options);
  const auto outcome = resolver.resolve(
      dns::Name::of("valid.extended-dns-errors.com"), dns::RRType::A);
  ASSERT_EQ(outcome.errors.size(), 1u);
  EXPECT_EQ(outcome.errors.front().code, edns::EdeCode::Filtered);
}

TEST_F(PolicyAndSynthesis, VendorsWithoutRpzSupportStaySilent) {
  // Quad9's profile has no policy-code mappings: blocked answer, no EDE.
  ResolverOptions options;
  options.policy.push_back({dns::Name::of("valid.extended-dns-errors.com"),
                            PolicyAction::Block, ""});
  auto resolver = testbed_.make_resolver(resolver::profile_quad9(), options);
  const auto outcome = resolver.resolve(
      dns::Name::of("valid.extended-dns-errors.com"), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::NXDOMAIN);
  EXPECT_TRUE(outcome.errors.empty());
}

TEST_F(PolicyAndSynthesis, UnrelatedNamesAreUnaffectedByPolicy) {
  ResolverOptions options;
  options.policy.push_back({dns::Name::of("blocked.example"),
                            PolicyAction::Block, ""});
  auto resolver =
      testbed_.make_resolver(resolver::profile_cloudflare(), options);
  const auto outcome = resolver.resolve(
      dns::Name::of("valid.extended-dns-errors.com"), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR);
  EXPECT_TRUE(outcome.errors.empty());
}

TEST_F(PolicyAndSynthesis, AggressiveCachingSynthesizesNxdomain) {
  ResolverOptions options;
  options.aggressive_nsec_caching = true;
  auto resolver =
      testbed_.make_resolver(resolver::profile_reference(), options);

  // First NXDOMAIN populates the validated range cache.
  const auto first = resolver.resolve(
      dns::Name::of("aaa-missing.valid.extended-dns-errors.com"),
      dns::RRType::A);
  ASSERT_EQ(first.rcode, dns::RCode::NXDOMAIN);
  ASSERT_EQ(first.security, dnssec::Security::Secure);

  // A *different* nonexistent name covered by the same NSEC3 range must be
  // answered locally: zero upstream queries and EDE 29.
  const auto sent_before = network_->stats().packets_sent;
  const auto second = resolver.resolve(
      dns::Name::of("zzz-missing.valid.extended-dns-errors.com"),
      dns::RRType::A);
  EXPECT_EQ(second.rcode, dns::RCode::NXDOMAIN);
  EXPECT_EQ(second.security, dnssec::Security::Secure);
  EXPECT_EQ(network_->stats().packets_sent, sent_before);
  ASSERT_EQ(second.errors.size(), 1u);
  EXPECT_EQ(second.errors.front().code, edns::EdeCode::Synthesized);
}

TEST_F(PolicyAndSynthesis, SynthesisIsOffByDefault) {
  auto resolver = testbed_.make_resolver(resolver::profile_reference());
  (void)resolver.resolve(
      dns::Name::of("aaa-missing.valid.extended-dns-errors.com"),
      dns::RRType::A);
  const auto sent_before = network_->stats().packets_sent;
  const auto second = resolver.resolve(
      dns::Name::of("zzz-missing.valid.extended-dns-errors.com"),
      dns::RRType::A);
  EXPECT_GT(network_->stats().packets_sent, sent_before);
  EXPECT_TRUE(second.errors.empty());
}

TEST_F(PolicyAndSynthesis, SynthesisNeverShadowsExistingNames) {
  ResolverOptions options;
  options.aggressive_nsec_caching = true;
  auto resolver =
      testbed_.make_resolver(resolver::profile_reference(), options);
  (void)resolver.resolve(
      dns::Name::of("aaa-missing.valid.extended-dns-errors.com"),
      dns::RRType::A);
  // The apex itself exists: its hash matches an NSEC3 owner, which covers
  // nothing, so it must still resolve positively.
  const auto outcome = resolver.resolve(
      dns::Name::of("valid.extended-dns-errors.com"), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR);
  EXPECT_TRUE(outcome.errors.empty());
}

}  // namespace
