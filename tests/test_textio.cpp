// Master-file I/O tests: RFC 1035 §5 parsing (directives, relative names,
// parentheses, comments, quoted strings), DNSSEC presentation formats, the
// print→parse round-trip property on real signed zones, and error paths.
#include <gtest/gtest.h>

#include "testbed/testbed.hpp"
#include "zone/signer.hpp"
#include "zone/textio.hpp"

namespace {

using namespace ede;
using namespace ede::zone;
using dns::Name;
using dns::RRType;

ParseOptions options_for(const char* origin) {
  ParseOptions options;
  options.origin = Name::of(origin);
  return options;
}

TEST(ZoneText, MinimalZone) {
  const char* text = R"(
$ORIGIN example.com.
$TTL 300
@   IN SOA ns1 hostmaster 1 7200 3600 1209600 300
@   IN NS  ns1
ns1 IN A   192.0.2.53
www IN A   192.0.2.80
)";
  auto zone = parse_zone_text(text, {});
  ASSERT_TRUE(zone.ok()) << zone.error().message;
  const auto& z = zone.value();
  EXPECT_EQ(z.origin(), Name::of("example.com"));
  EXPECT_EQ(z.default_ttl(), 300u);
  ASSERT_NE(z.find(Name::of("example.com"), RRType::SOA), nullptr);
  const auto* www = z.find(Name::of("www.example.com"), RRType::A);
  ASSERT_NE(www, nullptr);
  EXPECT_EQ(www->ttl, 300u);
  const auto& soa =
      std::get<dns::SoaRdata>(z.find(z.origin(), RRType::SOA)->rdatas[0]);
  EXPECT_EQ(soa.mname, Name::of("ns1.example.com"));  // relative resolved
  EXPECT_EQ(soa.minimum, 300u);
}

TEST(ZoneText, CommentsAndBlankLines) {
  const char* text =
      "; leading comment\n"
      "\n"
      "www IN A 192.0.2.1 ; trailing comment\n";
  auto zone = parse_zone_text(text, options_for("example.org"));
  ASSERT_TRUE(zone.ok()) << zone.error().message;
  EXPECT_NE(zone.value().find(Name::of("www.example.org"), RRType::A),
            nullptr);
}

TEST(ZoneText, ParenthesesSpanLines) {
  const char* text = R"(
@ IN SOA ns1.example.com. hostmaster.example.com. (
      2023051500 ; serial
      7200       ; refresh
      3600       ; retry
      1209600    ; expire
      300 )      ; minimum
)";
  auto zone = parse_zone_text(text, options_for("example.com"));
  ASSERT_TRUE(zone.ok()) << zone.error().message;
  const auto& soa = std::get<dns::SoaRdata>(
      zone.value().find(Name::of("example.com"), RRType::SOA)->rdatas[0]);
  EXPECT_EQ(soa.serial, 2023051500u);
  EXPECT_EQ(soa.minimum, 300u);
}

TEST(ZoneText, OwnerInheritance) {
  const char* text =
      "www IN A 192.0.2.1\n"
      "    IN A 192.0.2.2\n"
      "    IN TXT \"hello world\"\n";
  auto zone = parse_zone_text(text, options_for("example.com"));
  ASSERT_TRUE(zone.ok()) << zone.error().message;
  const auto* a = zone.value().find(Name::of("www.example.com"), RRType::A);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->rdatas.size(), 2u);
  const auto* txt =
      zone.value().find(Name::of("www.example.com"), RRType::TXT);
  ASSERT_NE(txt, nullptr);
  EXPECT_EQ(std::get<dns::TxtRdata>(txt->rdatas[0]).strings[0],
            "hello world");
}

TEST(ZoneText, QuotedStringsKeepSpacesAndEscapes) {
  const char* text = "t IN TXT \"a;b ( ) \\\" c\" plain\n";
  auto zone = parse_zone_text(text, options_for("example.com"));
  ASSERT_TRUE(zone.ok()) << zone.error().message;
  const auto& txt = std::get<dns::TxtRdata>(
      zone.value().find(Name::of("t.example.com"), RRType::TXT)->rdatas[0]);
  ASSERT_EQ(txt.strings.size(), 2u);
  EXPECT_EQ(txt.strings[0], "a;b ( ) \" c");
  EXPECT_EQ(txt.strings[1], "plain");
}

TEST(ZoneText, ExplicitTtlAndClassInEitherOrder) {
  const char* text =
      "a 60 IN A 192.0.2.1\n"
      "b IN 120 A 192.0.2.2\n"
      "c 180 A 192.0.2.3\n";
  auto zone = parse_zone_text(text, options_for("example.com"));
  ASSERT_TRUE(zone.ok()) << zone.error().message;
  EXPECT_EQ(zone.value().find(Name::of("a.example.com"), RRType::A)->ttl, 60u);
  EXPECT_EQ(zone.value().find(Name::of("b.example.com"), RRType::A)->ttl,
            120u);
  EXPECT_EQ(zone.value().find(Name::of("c.example.com"), RRType::A)->ttl,
            180u);
}

TEST(ZoneText, DnssecRecordTypes) {
  const char* text = R"(
@ IN DS     12345 8 2 abcdef0123456789abcdef0123456789abcdef0123456789abcdef0123456789
@ IN DNSKEY 257 3 8 q83vASNFZ4mrze8BI0Vnias=
@ IN NSEC3PARAM 1 0 5 aabb
@ IN NSEC   next.example.com. A NS SOA RRSIG
)";
  auto zone = parse_zone_text(text, options_for("example.com"));
  ASSERT_TRUE(zone.ok()) << zone.error().message;
  const auto& z = zone.value();
  const auto& ds = std::get<dns::DsRdata>(
      z.find(z.origin(), RRType::DS)->rdatas[0]);
  EXPECT_EQ(ds.key_tag, 12345);
  EXPECT_EQ(ds.digest.size(), 32u);
  const auto& key = std::get<dns::DnskeyRdata>(
      z.find(z.origin(), RRType::DNSKEY)->rdatas[0]);
  EXPECT_EQ(key.flags, 257);
  EXPECT_FALSE(key.public_key.empty());
  const auto& param = std::get<dns::Nsec3ParamRdata>(
      z.find(z.origin(), RRType::NSEC3PARAM)->rdatas[0]);
  EXPECT_EQ(param.iterations, 5);
  EXPECT_EQ(param.salt, (ede::crypto::Bytes{0xaa, 0xbb}));
  const auto& nsec = std::get<dns::NsecRdata>(
      z.find(z.origin(), RRType::NSEC)->rdatas[0]);
  EXPECT_TRUE(nsec.types.contains(RRType::RRSIG));
}

TEST(ZoneText, Rfc3597UnknownType) {
  const char* text = "x IN TYPE4242 \\# 3 00ff7f\n";
  auto zone = parse_zone_text(text, options_for("example.com"));
  ASSERT_TRUE(zone.ok()) << zone.error().message;
  const auto* rrset =
      zone.value().find(Name::of("x.example.com"), static_cast<RRType>(4242));
  ASSERT_NE(rrset, nullptr);
  const auto& unknown = std::get<dns::UnknownRdata>(rrset->rdatas[0]);
  EXPECT_EQ(unknown.data, (ede::crypto::Bytes{0x00, 0xff, 0x7f}));
}

TEST(ZoneText, ErrorsCarryLineNumbers) {
  const auto bad_type = parse_zone_text("a IN BOGUS 1.2.3.4\n",
                                        options_for("example.com"));
  ASSERT_FALSE(bad_type.ok());
  EXPECT_NE(bad_type.error().message.find("line 1"), std::string::npos);

  const auto bad_addr = parse_zone_text(
      "ok IN A 192.0.2.1\nbad IN A not-an-ip\n", options_for("example.com"));
  ASSERT_FALSE(bad_addr.ok());
  EXPECT_NE(bad_addr.error().message.find("line 2"), std::string::npos);
}

TEST(ZoneText, RejectsStructuralErrors) {
  EXPECT_FALSE(parse_zone_text("a IN A (192.0.2.1\n",
                               options_for("e.com")).ok());
  EXPECT_FALSE(parse_zone_text("a IN A )192.0.2.1\n",
                               options_for("e.com")).ok());
  EXPECT_FALSE(parse_zone_text("a IN TXT \"unterminated\n",
                               options_for("e.com")).ok());
  EXPECT_FALSE(parse_zone_text("   IN A 192.0.2.1\n",  // nothing to inherit
                               options_for("e.com")).ok());
  EXPECT_FALSE(parse_zone_text("$BOGUS x\n", options_for("e.com")).ok());
}

// The round-trip property on a fully signed zone: print → parse → identical
// records (this exercises every DNSSEC presentation format with real data).
TEST(ZoneText, SignedZoneRoundTrips) {
  Zone original(Name::of("roundtrip.example"));
  dns::SoaRdata soa;
  soa.mname = Name::of("ns1.roundtrip.example");
  soa.rname = Name::of("hostmaster.roundtrip.example");
  soa.serial = 42;
  original.add(original.origin(), RRType::SOA, soa);
  original.add(original.origin(), RRType::NS,
               dns::NsRdata{Name::of("ns1.roundtrip.example")});
  original.add(Name::of("ns1.roundtrip.example"), RRType::A,
               dns::ARdata{*dns::Ipv4Address::parse("93.184.216.5")});
  original.add(Name::of("www.roundtrip.example"), RRType::AAAA,
               dns::AaaaRdata{*dns::Ipv6Address::parse("2606:4700::1")});
  original.add(original.origin(), RRType::TXT,
               dns::TxtRdata{{"round trip", "test"}});
  original.add(original.origin(), RRType::MX,
               dns::MxRdata{10, Name::of("mail.roundtrip.example")});
  zone::sign_zone(original, zone::make_zone_keys(original.origin()), {});

  const auto text = to_zone_text(original);
  auto reparsed = parse_zone_text(text, {});
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
  const auto& copy = reparsed.value();

  EXPECT_EQ(copy.origin(), original.origin());
  EXPECT_EQ(copy.record_count(), original.record_count());
  for (const auto& name : original.names()) {
    for (const auto* rrset : original.at(name)) {
      const auto* twin = copy.find(name, rrset->type);
      ASSERT_NE(twin, nullptr)
          << name.to_string() << " " << dns::to_string(rrset->type);
      // Compare as canonical multisets (text order may differ).
      auto a = rrset->rdatas;
      auto b = twin->rdatas;
      auto key = [](const dns::Rdata& rd) { return dns::canonical_rdata(rd); };
      std::sort(a.begin(), a.end(), [&](const auto& x, const auto& y) {
        return key(x) < key(y);
      });
      std::sort(b.begin(), b.end(), [&](const auto& x, const auto& y) {
        return key(x) < key(y);
      });
      EXPECT_EQ(a, b) << name.to_string() << " "
                      << dns::to_string(rrset->type);
    }
  }
}

// Every one of the 63 testbed zones must survive export+import — mutations
// included (broken chains, orphan records, odd algorithm numbers).
TEST(ZoneText, AllTestbedZonesRoundTrip) {
  auto network = std::make_shared<sim::Network>(
      std::make_shared<sim::Clock>());
  testbed::Testbed bed(network);
  for (const auto& spec : bed.cases()) {
    const auto zone = bed.child_zone(spec.label);
    ASSERT_NE(zone, nullptr);
    const auto text = to_zone_text(*zone);
    auto reparsed = parse_zone_text(text, {});
    ASSERT_TRUE(reparsed.ok())
        << spec.label << ": " << reparsed.error().message;
    EXPECT_EQ(reparsed.value().record_count(), zone->record_count())
        << spec.label;
    EXPECT_EQ(reparsed.value().origin(), zone->origin()) << spec.label;
  }
}

}  // namespace
