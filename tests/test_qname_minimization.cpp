// QNAME minimization (RFC 7816 / RFC 9156) tests: privacy property (upper
// zones never see the full name), correctness on positive/negative
// answers, and the headline invariant — the entire Table 4 matrix is
// unchanged by the option.
#include <gtest/gtest.h>

#include "testbed/expected.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace ede;
using resolver::ResolverOptions;

class QnameMinimization : public ::testing::Test {
 protected:
  QnameMinimization()
      : network_(std::make_shared<sim::Network>(
            std::make_shared<sim::Clock>())),
        testbed_(network_) {}

  std::shared_ptr<sim::Network> network_;
  testbed::Testbed testbed_;
};

std::vector<std::uint16_t> sorted_codes(const resolver::Outcome& o) {
  std::vector<std::uint16_t> codes;
  for (const auto& error : o.errors)
    codes.push_back(static_cast<std::uint16_t>(error.code));
  std::sort(codes.begin(), codes.end());
  codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
  return codes;
}

TEST_F(QnameMinimization, PositiveResolutionStillWorks) {
  ResolverOptions options;
  options.qname_minimization = true;
  auto resolver =
      testbed_.make_resolver(resolver::profile_cloudflare(), options);
  const auto outcome = resolver.resolve(
      dns::Name::of("valid.extended-dns-errors.com"), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR);
  EXPECT_EQ(outcome.security, dnssec::Security::Secure);
  EXPECT_TRUE(outcome.errors.empty());
}

TEST_F(QnameMinimization, NegativeResolutionStillWorks) {
  ResolverOptions options;
  options.qname_minimization = true;
  auto resolver =
      testbed_.make_resolver(resolver::profile_cloudflare(), options);
  const auto outcome = resolver.resolve(
      dns::Name::of("nope.valid.extended-dns-errors.com"), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::NXDOMAIN);
  EXPECT_EQ(outcome.security, dnssec::Security::Secure);
}

TEST_F(QnameMinimization, EarlyNxdomainFromAnAncestor) {
  ResolverOptions options;
  options.qname_minimization = true;
  auto resolver =
      testbed_.make_resolver(resolver::profile_cloudflare(), options);
  // "a.b.missing.extended-dns-errors.com": the "missing" label already
  // does not exist, so minimization discovers NXDOMAIN one level early.
  const auto outcome = resolver.resolve(
      dns::Name::of("a.b.missing.extended-dns-errors.com"), dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::NXDOMAIN);
  EXPECT_EQ(outcome.security, dnssec::Security::Secure);
}

TEST_F(QnameMinimization, UpperZonesNeverSeeTheFullName) {
  // Tee the root server: record every query that reaches it.
  std::vector<dns::Name> seen;
  const auto root_addr = testbed_.root_servers().front();
  // Rebuild a recording shim in front of the existing endpoint by
  // resending through a fresh network tee: attach a wrapper that parses,
  // records, and delegates to a second testbed's root... simplest honest
  // tee: a second Testbed instance on a second Network is identical by
  // construction, so forward into it.
  auto inner_network = std::make_shared<sim::Network>(
      std::make_shared<sim::Clock>());
  auto inner_testbed = std::make_shared<testbed::Testbed>(inner_network);
  network_->attach(
      root_addr,
      [inner_network, root_addr, &seen](
          crypto::BytesView wire,
          const sim::PacketContext& ctx) -> std::optional<crypto::Bytes> {
        if (auto query = dns::Message::parse(wire); query.ok()) {
          if (!query.value().question.empty())
            seen.push_back(query.value().question.front().qname);
        }
        const auto result = inner_network->send(ctx.source, root_addr, wire);
        if (result.status != sim::SendStatus::Delivered) return std::nullopt;
        return result.response;
      });

  ResolverOptions options;
  options.qname_minimization = true;
  auto resolver =
      testbed_.make_resolver(resolver::profile_cloudflare(), options);
  const auto full_name = dns::Name::of("valid.extended-dns-errors.com");
  const auto outcome = resolver.resolve(full_name, dns::RRType::A);
  EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR);

  ASSERT_FALSE(seen.empty());
  for (const auto& qname : seen) {
    EXPECT_FALSE(qname == full_name)
        << "the root saw the full query name: " << qname.to_string();
    EXPECT_LE(qname.label_count(), 1u);  // "." DNSKEY or "com" NS only
  }
}

TEST_F(QnameMinimization, Table4MatrixIsInvariant) {
  // The paper's matrix must not depend on this privacy mechanism: the
  // findings are about zone state, not about how the resolver walked down.
  ResolverOptions options;
  options.qname_minimization = true;
  const auto& expected = testbed::expected_table4();
  const auto profiles = resolver::all_profiles();
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    auto resolver = testbed_.make_resolver(profiles[p], options);
    for (std::size_t i = 0; i < testbed_.cases().size(); ++i) {
      resolver.flush();
      const auto outcome = resolver.resolve(
          testbed_.query_name(testbed_.cases()[i]), dns::RRType::A);
      EXPECT_EQ(sorted_codes(outcome), expected[i].codes[p])
          << testbed_.cases()[i].label << " via " << profiles[p].name
          << " with qname minimization";
    }
  }
}

TEST_F(QnameMinimization, CacheStillServesMinimizedResults) {
  ResolverOptions options;
  options.qname_minimization = true;
  auto resolver =
      testbed_.make_resolver(resolver::profile_cloudflare(), options);
  (void)resolver.resolve(dns::Name::of("valid.extended-dns-errors.com"),
                         dns::RRType::A);
  const auto sent = network_->stats().packets_sent;
  const auto outcome = resolver.resolve(
      dns::Name::of("valid.extended-dns-errors.com"), dns::RRType::A);
  EXPECT_EQ(network_->stats().packets_sent, sent);
  EXPECT_EQ(outcome.rcode, dns::RCode::NOERROR);
}

}  // namespace

namespace {

TEST_F(QnameMinimization, TraceShowsTheMinimizedWalk) {
  resolver::ResolverOptions options;
  options.qname_minimization = true;
  auto resolver =
      testbed_.make_resolver(resolver::profile_cloudflare(), options);
  const auto outcome = resolver.resolve(
      dns::Name::of("valid.extended-dns-errors.com"), dns::RRType::A);
  ASSERT_GE(outcome.trace.size(), 3u);
  // The first step queries the root for just the TLD.
  EXPECT_TRUE(outcome.trace.front().zone.is_root());
  EXPECT_EQ(outcome.trace.front().qname, dns::Name::of("com"));
  EXPECT_EQ(outcome.trace.front().qtype, dns::RRType::NS);
  // The last step is the full-name answer.
  EXPECT_EQ(outcome.trace.back().qname,
            dns::Name::of("valid.extended-dns-errors.com"));
  EXPECT_EQ(outcome.trace.back().note, "answer");
}

TEST_F(QnameMinimization, TraceWithoutMinimizationAsksFullNames) {
  auto resolver = testbed_.make_resolver(resolver::profile_cloudflare());
  const auto outcome = resolver.resolve(
      dns::Name::of("valid.extended-dns-errors.com"), dns::RRType::A);
  ASSERT_FALSE(outcome.trace.empty());
  for (const auto& step : outcome.trace) {
    EXPECT_EQ(step.qname, dns::Name::of("valid.extended-dns-errors.com"));
  }
}

}  // namespace
