// EDNS(0) and RFC 8914 tests: the OPT packed-field conversions, EDE option
// encoding, and the IANA registry snapshot the paper's Table 1 lists.
#include <gtest/gtest.h>

#include "dnscore/rdata.hpp"
#include "dnscore/wire.hpp"
#include "edns/ede.hpp"
#include "edns/edns.hpp"

namespace {

using namespace ede::edns;
using ede::dns::Message;
using ede::dns::Name;
using ede::dns::RRType;

TEST(EdeRegistry, HoldsAllThirtyCodes) {
  // Table 1: codes 0..29, contiguous at the paper's snapshot.
  const auto& registry = ede_registry();
  ASSERT_EQ(registry.size(), 30u);
  for (std::size_t i = 0; i < registry.size(); ++i) {
    EXPECT_EQ(static_cast<std::uint16_t>(registry[i].code), i);
  }
}

TEST(EdeRegistry, NamesMatchTable1) {
  EXPECT_EQ(to_string(EdeCode::Other), "Other");
  EXPECT_EQ(to_string(EdeCode::UnsupportedDnskeyAlgorithm),
            "Unsupported DNSKEY Algorithm");
  EXPECT_EQ(to_string(EdeCode::DnssecBogus), "DNSSEC Bogus");
  EXPECT_EQ(to_string(EdeCode::DnskeyMissing), "DNSKEY Missing");
  EXPECT_EQ(to_string(EdeCode::RrsigsMissing), "RRSIGs Missing");
  EXPECT_EQ(to_string(EdeCode::NoReachableAuthority),
            "No Reachable Authority");
  EXPECT_EQ(to_string(EdeCode::NetworkError), "Network Error");
  EXPECT_EQ(to_string(EdeCode::SignatureExpiredBeforeValid),
            "Signature Expired before Valid");
  EXPECT_EQ(to_string(EdeCode::Synthesized), "Synthesized");
}

TEST(EdeRegistry, UnregisteredCodesPrintNumerically) {
  EXPECT_EQ(to_string(static_cast<EdeCode>(999)), "EDE999");
  EXPECT_FALSE(is_registered(static_cast<EdeCode>(999)));
  EXPECT_TRUE(is_registered(EdeCode::StaleAnswer));
}

TEST(ExtendedError, OptionRoundTrip) {
  const ExtendedError original{EdeCode::NetworkError,
                               "1.2.3.4:53 rcode=REFUSED for a.com A"};
  const auto option = original.to_option();
  EXPECT_EQ(option.code, kEdeOptionCode);
  const auto decoded = ExtendedError::from_option(option);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), original);
}

TEST(ExtendedError, EmptyExtraTextIsTwoBytes) {
  const ExtendedError error{EdeCode::DnssecBogus, ""};
  EXPECT_EQ(error.to_option().data.size(), 2u);
}

TEST(ExtendedError, RejectsShortOption) {
  ede::dns::EdnsOption option{kEdeOptionCode, {0x00}};
  EXPECT_FALSE(ExtendedError::from_option(option).ok());
}

TEST(ExtendedError, RejectsWrongOptionCode) {
  ede::dns::EdnsOption option{10, {0x00, 0x06}};
  EXPECT_FALSE(ExtendedError::from_option(option).ok());
}

TEST(ExtendedError, ToStringIncludesCodeAndName) {
  const ExtendedError error{EdeCode::StaleAnswer, "ttl expired"};
  EXPECT_EQ(error.to_string(), "EDE 3 (Stale Answer): ttl expired");
}

TEST(Edns, OptRecordPackedFieldsRoundTrip) {
  Edns edns;
  edns.udp_payload_size = 4096;
  edns.version = 0;
  edns.dnssec_ok = true;
  edns.options.push_back(ExtendedError{EdeCode::Filtered, ""}.to_option());

  const auto rr = to_opt_record(edns);
  EXPECT_EQ(rr.type, RRType::OPT);
  EXPECT_TRUE(rr.name.is_root());
  const auto decoded = from_opt_record(rr);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().udp_payload_size, 4096);
  EXPECT_TRUE(decoded.value().dnssec_ok);
  ASSERT_EQ(decoded.value().options.size(), 1u);
}

TEST(Edns, DnssecOkBitIsBit15OfTtl) {
  Edns edns;
  edns.dnssec_ok = true;
  EXPECT_EQ(to_opt_record(edns).ttl & 0x8000u, 0x8000u);
  edns.dnssec_ok = false;
  EXPECT_EQ(to_opt_record(edns).ttl & 0x8000u, 0u);
}

TEST(Edns, MessageLevelHelpers) {
  Message msg = ede::dns::make_query(9, Name::of("q.test"), RRType::A);
  EXPECT_FALSE(get_edns(msg).has_value());
  EXPECT_TRUE(get_extended_errors(msg).empty());

  add_extended_error(msg, {EdeCode::DnssecBogus, "chain broken"});
  add_extended_error(msg, {EdeCode::NoReachableAuthority, ""});

  const auto errors = get_extended_errors(msg);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0].code, EdeCode::DnssecBogus);
  EXPECT_EQ(errors[0].extra_text, "chain broken");
  EXPECT_EQ(errors[1].code, EdeCode::NoReachableAuthority);

  // And it all survives the wire.
  msg.header.qr = true;
  const auto parsed = Message::parse(msg.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(get_extended_errors(parsed.value()), errors);
}

TEST(Edns, MultipleEdeOptionsInOneOpt) {
  Edns edns;
  edns.add({EdeCode::DnskeyMissing, "a"});
  edns.add({EdeCode::NetworkError, "b"});
  edns.add({EdeCode::NoReachableAuthority, "c"});
  const auto errors = edns.extended_errors();
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_EQ(errors[2].extra_text, "c");
}

TEST(Edns, MalformedEdeOptionsAreSkipped) {
  Edns edns;
  edns.options.push_back({kEdeOptionCode, {0x01}});  // too short
  edns.add({EdeCode::Censored, ""});
  EXPECT_EQ(edns.extended_errors().size(), 1u);
}

// RFC 6891 §6.1.2 round-trip symmetry: options the resolver never sent —
// an echoed experimental-range option, a cookie-shaped blob — must survive
// build → parse → build byte-identically, in order, between EDE options.
// Golden-pinned so a codec change that silently reorders, re-encodes or
// drops unknown options fails loudly.
TEST(Edns, UnknownEchoedOptionsGoldenRoundTrip) {
  Edns edns;
  edns.udp_payload_size = 1232;
  edns.dnssec_ok = true;
  edns.options.push_back({0xfde9, {0x7a, 0x6f, 0x6f}});  // echoed "zoo"
  edns.add({EdeCode::NetworkError, "x"});
  edns.options.push_back({0x000a, {0xde, 0xad, 0xbe, 0xef}});  // cookie-ish

  Message msg = ede::dns::make_query(7, Name::of("echo.test"), RRType::A);
  msg.header.qr = true;
  set_edns(msg, edns);
  const auto first_wire = msg.serialize();

  const auto parsed = Message::parse(first_wire);
  ASSERT_TRUE(parsed.ok());
  const auto view = get_edns(parsed.value());
  ASSERT_TRUE(view.has_value());
  ASSERT_EQ(view->options.size(), 3u);
  EXPECT_EQ(view->options[0].code, 0xfde9);
  EXPECT_FALSE(view->garbled());

  Message rebuilt = ede::dns::make_query(7, Name::of("echo.test"), RRType::A);
  rebuilt.header.qr = true;
  set_edns(rebuilt, *view);
  EXPECT_EQ(rebuilt.serialize(), first_wire);

  // The golden OPT rdata wire: three options back to back, the EDE
  // (option-code 15, INFO-CODE 23 "Network Error", extra-text "x")
  // sandwiched between the two unknowns.
  const ede::crypto::Bytes golden{
      0xfd, 0xe9, 0x00, 0x03, 0x7a, 0x6f, 0x6f,        // echoed option
      0x00, 0x0f, 0x00, 0x03, 0x00, 0x17, 0x78,        // EDE 23 "x"
      0x00, 0x0a, 0x00, 0x04, 0xde, 0xad, 0xbe, 0xef,  // cookie-ish blob
  };
  ede::dns::WireWriter w;
  ede::dns::encode_rdata(w, to_opt_record(*view).rdata, /*compress=*/false);
  EXPECT_EQ(w.data(), golden);
}

// A garbled tail (unparseable OPT rdata bytes) is carried through the
// typed view and re-serialized verbatim — byte fidelity even for the
// bytes the decoder could not make sense of.
TEST(Edns, GarbledTrailingBytesRoundTrip) {
  Edns edns;
  edns.add({EdeCode::DnssecBogus, ""});
  edns.trailing = {0x00, 0x0a, 0x40, 0x99};  // declares more than it has

  Message msg = ede::dns::make_query(8, Name::of("garble.test"), RRType::A);
  msg.header.qr = true;
  set_edns(msg, edns);
  const auto wire = msg.serialize();

  const auto parsed = Message::parse(wire);
  ASSERT_TRUE(parsed.ok());
  const auto view = get_edns(parsed.value());
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->garbled());
  EXPECT_EQ(view->trailing, edns.trailing);
  // The well-formed prefix still decodes.
  ASSERT_EQ(view->extended_errors().size(), 1u);

  Message rebuilt = ede::dns::make_query(8, Name::of("garble.test"),
                                         RRType::A);
  rebuilt.header.qr = true;
  set_edns(rebuilt, *view);
  EXPECT_EQ(rebuilt.serialize(), wire);
}

TEST(Edns, SetEdnsReplacesExisting) {
  Message msg = ede::dns::make_query(9, Name::of("q.test"), RRType::A);
  set_edns(msg, Edns{});
  Edns bigger;
  bigger.udp_payload_size = 8192;
  set_edns(msg, bigger);
  ASSERT_EQ(msg.additional.size(), 1u);
  EXPECT_EQ(get_edns(msg)->udp_payload_size, 8192);
}

}  // namespace

namespace {

TEST(EdnsDisplay, OptRdataRendersEdeInline) {
  ede::edns::Edns edns;
  edns.add({ede::edns::EdeCode::NetworkError, "srv:53 rcode=REFUSED"});
  edns.add({ede::edns::EdeCode::NoReachableAuthority, ""});
  const auto rr = ede::edns::to_opt_record(edns);
  const auto text = ede::dns::rdata_to_string(rr.rdata);
  EXPECT_NE(text.find("EDE=23"), std::string::npos) << text;
  EXPECT_NE(text.find("EDE=22"), std::string::npos) << text;
  EXPECT_NE(text.find("srv:53 rcode=REFUSED"), std::string::npos) << text;
}

}  // namespace
