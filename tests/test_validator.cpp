// Direct validator unit tests with hand-built inputs — exercising the
// trust-anchor path, DS-set classification, signature selection and
// denial-of-existence logic without a resolver or network in the way.
#include <gtest/gtest.h>

#include "dnssec/validate.hpp"
#include "edns/edns.hpp"
#include "server/auth_server.hpp"
#include "zone/signer.hpp"

namespace {

using namespace ede;
using namespace ede::dnssec;
using dns::Name;
using dns::RRset;
using dns::RRType;

constexpr std::uint32_t kNow = sim::kDefaultNow;

struct SignedZoneFixture {
  Name origin = Name::of("unit.example");
  zone::ZoneKeys keys = zone::make_zone_keys(origin);
  SignatureWindow window{kNow - 1000, kNow + 1000};

  RRset dnskey_rrset() const {
    return RRset{origin,
                 RRType::DNSKEY,
                 dns::RRClass::IN,
                 3600,
                 {dns::Rdata{keys.ksk.dnskey}, dns::Rdata{keys.zsk.dnskey}}};
  }
  std::vector<dns::RrsigRdata> dnskey_sigs() const {
    return {sign_rrset(dnskey_rrset(), keys.ksk, origin, window),
            sign_rrset(dnskey_rrset(), keys.zsk, origin, window)};
  }
  std::vector<dns::DsRdata> ds() const {
    return {make_ds(origin, keys.ksk.dnskey, 2)};
  }
  std::vector<dns::DnskeyRdata> all_keys() const {
    return {keys.ksk.dnskey, keys.zsk.dnskey};
  }
  RRset a_rrset() const {
    return RRset{origin, RRType::A, dns::RRClass::IN, 300,
                 {dns::Rdata{dns::ARdata{*dns::Ipv4Address::parse("192.0.2.1")}}}};
  }
};

TEST(ValidateZoneKeys, HappyPath) {
  SignedZoneFixture f;
  const auto rrset = f.dnskey_rrset();
  const auto result = validate_zone_keys(f.origin, f.ds(), &rrset,
                                         f.dnskey_sigs(), kNow, {});
  EXPECT_EQ(result.security, Security::Secure);
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.zone_keys.size(), 2u);
}

TEST(ValidateZoneKeys, EmptyDsSetIsInsecure) {
  SignedZoneFixture f;
  const auto rrset = f.dnskey_rrset();
  const auto result =
      validate_zone_keys(f.origin, {}, &rrset, f.dnskey_sigs(), kNow, {});
  EXPECT_EQ(result.security, Security::Insecure);
  EXPECT_TRUE(result.zone_keys.empty());
}

TEST(ValidateZoneKeys, MissingDnskeyRrsetIsBogus) {
  SignedZoneFixture f;
  const auto result =
      validate_zone_keys(f.origin, f.ds(), nullptr, {}, kNow, {});
  EXPECT_EQ(result.security, Security::Bogus);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings.front().defect, Defect::DnskeyFetchFailed);
}

TEST(ValidateZoneKeys, OneGoodDsAmongBrokenOnesSuffices) {
  SignedZoneFixture f;
  auto ds_set = f.ds();
  dns::DsRdata broken = ds_set.front();
  broken.key_tag += 1;
  ds_set.insert(ds_set.begin(), broken);  // broken first, good second
  const auto rrset = f.dnskey_rrset();
  const auto result = validate_zone_keys(f.origin, ds_set, &rrset,
                                         f.dnskey_sigs(), kNow, {});
  // Trust is established; the mismatching DS is still reported.
  EXPECT_EQ(result.security, Security::Secure);
  ASSERT_FALSE(result.findings.empty());
  EXPECT_EQ(result.findings.front().defect, Defect::NoMatchingDnskeyForDs);
}

TEST(ValidateZoneKeys, UnsupportedAlgorithmDsOnlyIsInsecure) {
  SignedZoneFixture f;
  auto ds_set = f.ds();
  ds_set.front().algorithm = 1;  // RSAMD5: deprecated, unsupported
  const auto rrset = f.dnskey_rrset();
  const auto result = validate_zone_keys(f.origin, ds_set, &rrset,
                                         f.dnskey_sigs(), kNow, {});
  EXPECT_EQ(result.security, Security::Insecure);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings.front().defect, Defect::ZoneAlgorithmUnsupported);
}

TEST(ValidateZoneKeys, TrustAnchorPath) {
  SignedZoneFixture f;
  const auto rrset = f.dnskey_rrset();
  const auto good = validate_zone_keys_with_anchor(
      f.origin, f.keys.ksk.dnskey, &rrset, f.dnskey_sigs(), kNow, {});
  EXPECT_EQ(good.security, Security::Secure);

  const auto other = zone::make_zone_keys(Name::of("other.example"));
  const auto bad = validate_zone_keys_with_anchor(
      f.origin, other.ksk.dnskey, &rrset, f.dnskey_sigs(), kNow, {});
  EXPECT_EQ(bad.security, Security::Bogus);
}

TEST(ValidateZoneKeys, SigByZskOnlyIsNotTrust) {
  SignedZoneFixture f;
  const auto rrset = f.dnskey_rrset();
  const std::vector<dns::RrsigRdata> zsk_only = {
      sign_rrset(rrset, f.keys.zsk, f.origin, f.window)};
  const auto result =
      validate_zone_keys(f.origin, f.ds(), &rrset, zsk_only, kNow, {});
  EXPECT_EQ(result.security, Security::Bogus);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings.front().defect, Defect::DnskeyNotSignedByKsk);
}

TEST(ValidateAnswer, HappyPath) {
  SignedZoneFixture f;
  const auto rrset = f.a_rrset();
  const std::vector<dns::RrsigRdata> sigs = {
      sign_rrset(rrset, f.keys.zsk, f.origin, f.window)};
  const auto result =
      validate_answer_rrset(rrset, sigs, f.origin, f.all_keys(), kNow, {});
  EXPECT_EQ(result.security, Security::Secure);
  EXPECT_TRUE(result.findings.empty());
}

TEST(ValidateAnswer, OneValidSignatureAmongBrokenOnesWins) {
  SignedZoneFixture f;
  const auto rrset = f.a_rrset();
  auto broken = sign_rrset(rrset, f.keys.zsk, f.origin, f.window);
  broken.signature.back() ^= 0xff;
  const auto good = sign_rrset(rrset, f.keys.zsk, f.origin, f.window);
  const auto result = validate_answer_rrset(rrset, {broken, good}, f.origin,
                                            f.all_keys(), kNow, {});
  EXPECT_EQ(result.security, Security::Secure);
  EXPECT_TRUE(result.findings.empty());  // the failure is forgiven
}

TEST(ValidateAnswer, SignerNameMustMatchTheZone) {
  SignedZoneFixture f;
  const auto rrset = f.a_rrset();
  const std::vector<dns::RrsigRdata> sigs = {
      sign_rrset(rrset, f.keys.zsk, Name::of("evil.example"), f.window)};
  const auto result =
      validate_answer_rrset(rrset, sigs, f.origin, f.all_keys(), kNow, {});
  EXPECT_EQ(result.security, Security::Bogus);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings.front().defect, Defect::AnswerRrsigMissing);
}

TEST(ValidateAnswer, WrongTypeCoveredIsMissing) {
  SignedZoneFixture f;
  const auto rrset = f.a_rrset();
  auto sig = sign_rrset(rrset, f.keys.zsk, f.origin, f.window);
  sig.type_covered = RRType::TXT;
  const auto result =
      validate_answer_rrset(rrset, {sig}, f.origin, f.all_keys(), kNow, {});
  EXPECT_EQ(result.security, Security::Bogus);
  EXPECT_EQ(result.findings.front().defect, Defect::AnswerRrsigMissing);
}

TEST(ValidateAnswer, TemporalDefectsBeforeCrypto) {
  SignedZoneFixture f;
  const auto rrset = f.a_rrset();
  auto sig = sign_rrset(rrset, f.keys.zsk, f.origin, f.window);
  sig.expiration = kNow - 10;     // expired *and* crypto-broken (times are
  sig.signature.back() ^= 0xff;   // covered) — expired must win
  const auto result =
      validate_answer_rrset(rrset, {sig}, f.origin, f.all_keys(), kNow, {});
  EXPECT_EQ(result.security, Security::Bogus);
  EXPECT_EQ(result.findings.front().defect, Defect::AnswerRrsigExpired);
}

// --- negative responses --------------------------------------------------

class DenialFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    zone_ = std::make_unique<zone::Zone>(origin_);
    dns::SoaRdata soa;
    soa.mname = origin_;
    soa.rname = origin_;
    soa.minimum = 300;
    zone_->add(origin_, RRType::SOA, soa);
    zone_->add(origin_, RRType::NS, dns::NsRdata{Name::of("ns1.unit.example")});
    zone_->add(Name::of("ns1.unit.example"), RRType::A,
               dns::ARdata{*dns::Ipv4Address::parse("93.184.216.7")});
    zone_->add(Name::of("www.unit.example"), RRType::A,
               dns::ARdata{*dns::Ipv4Address::parse("93.184.216.8")});
    zone::sign_zone(*zone_, keys_, {});
  }

  /// A faithful negative-response authority section assembled from the
  /// signed zone, like the server would for qname.
  std::vector<dns::RRset> authority_for(const Name& qname) {
    server::ServerConfig config;
    config.udp_payload_size = 0xffff;  // a stream-sized limit: no truncation
    server::AuthServer server(config);
    // Reuse the real server logic by asking it directly.
    auto shared = std::make_shared<zone::Zone>(*zone_);
    server.add_zone(shared);
    dns::Message query = dns::make_query(1, qname, RRType::A);
    ede::edns::Edns e;
    e.dnssec_ok = true;
    e.udp_payload_size = 0xffff;
    ede::edns::set_edns(query, e);
    const auto response = server.handle(
        query, sim::PacketContext{sim::NodeAddress::of("192.0.2.9")});
    return dns::group_rrsets(response.authority);
  }

  std::vector<dns::DnskeyRdata> keys() const {
    return {keys_.ksk.dnskey, keys_.zsk.dnskey};
  }

  Name origin_ = Name::of("unit.example");
  zone::ZoneKeys keys_ = zone::make_zone_keys(origin_);
  std::unique_ptr<zone::Zone> zone_;
};

TEST_F(DenialFixture, ValidNxdomainProofIsSecure) {
  const auto authority = authority_for(Name::of("nope.unit.example"));
  const auto result = validate_negative_response(
      Name::of("nope.unit.example"), RRType::A, origin_, authority, keys(),
      kNow, {});
  EXPECT_EQ(result.security, Security::Secure) << [&] {
    std::string s;
    for (const auto& f : result.findings) s += to_string(f) + "; ";
    return s;
  }();
}

TEST_F(DenialFixture, DeepNxdomainProofIsSecure) {
  const auto qname = Name::of("a.b.c.nope.unit.example");
  const auto result = validate_negative_response(
      qname, RRType::A, origin_, authority_for(qname), keys(), kNow, {});
  EXPECT_EQ(result.security, Security::Secure);
}

TEST_F(DenialFixture, EmptyAuthorityIsAllMissing) {
  const auto result = validate_negative_response(
      Name::of("nope.unit.example"), RRType::A, origin_, {}, keys(), kNow,
      {});
  EXPECT_EQ(result.security, Security::Bogus);
  EXPECT_EQ(result.findings.front().defect, Defect::DenialAllMissing);
}

TEST_F(DenialFixture, IterationLimitMakesInsecure) {
  const auto authority = authority_for(Name::of("nope.unit.example"));
  ValidatorConfig config;
  config.nsec3_iteration_limit = 0;
  // Zone signed with 0 iterations — set the limit below by re-signing with
  // more iterations instead: rebuild with iterations=5.
  zone::Zone high_iter(origin_);
  dns::SoaRdata soa;
  soa.mname = origin_;
  soa.rname = origin_;
  high_iter.add(origin_, RRType::SOA, soa);
  zone::SigningPolicy policy;
  policy.nsec3_iterations = 5;
  zone::sign_zone(high_iter, keys_, policy);
  server::AuthServer server;
  server.config().udp_payload_size = 0xffff;  // no truncation in this test
  server.add_zone(std::make_shared<zone::Zone>(high_iter));
  dns::Message query = dns::make_query(1, Name::of("x.unit.example"), RRType::A);
  ede::edns::Edns e;
  e.dnssec_ok = true;
  e.udp_payload_size = 0xffff;
  ede::edns::set_edns(query, e);
  const auto response = server.handle(
      query, sim::PacketContext{sim::NodeAddress::of("192.0.2.9")});
  config.nsec3_iteration_limit = 2;
  const auto result = validate_negative_response(
      Name::of("x.unit.example"), RRType::A, origin_,
      dns::group_rrsets(response.authority), keys(), kNow, config);
  EXPECT_EQ(result.security, Security::Insecure);
  EXPECT_EQ(result.findings.front().defect, Defect::Nsec3IterationsTooHigh);
}

TEST_F(DenialFixture, DsAbsenceProofFromRealReferral) {
  // Add an unsigned delegation, re-sign, and check the referral proof.
  zone::Zone delegating(origin_);
  dns::SoaRdata soa;
  soa.mname = origin_;
  soa.rname = origin_;
  delegating.add(origin_, RRType::SOA, soa);
  delegating.add(Name::of("child.unit.example"), RRType::NS,
                 dns::NsRdata{Name::of("ns1.child.unit.example")});
  delegating.add(Name::of("ns1.child.unit.example"), RRType::A,
                 dns::ARdata{*dns::Ipv4Address::parse("93.184.216.9")});
  zone::sign_zone(delegating, keys_, {});

  server::AuthServer server;
  server.config().udp_payload_size = 0xffff;  // no truncation in this test
  server.add_zone(std::make_shared<zone::Zone>(delegating));
  dns::Message query =
      dns::make_query(1, Name::of("www.child.unit.example"), RRType::A);
  ede::edns::Edns e;
  e.dnssec_ok = true;
  e.udp_payload_size = 0xffff;
  ede::edns::set_edns(query, e);
  const auto response = server.handle(
      query, sim::PacketContext{sim::NodeAddress::of("192.0.2.9")});

  const auto result = validate_ds_absence(
      Name::of("child.unit.example"), origin_,
      dns::group_rrsets(response.authority), keys(), kNow, {});
  EXPECT_EQ(result.security, Security::Insecure);  // proven unsigned

  // Without the proof, the same check fails closed.
  const auto failed = validate_ds_absence(Name::of("child.unit.example"),
                                          origin_, {}, keys(), kNow, {});
  EXPECT_EQ(failed.security, Security::Bogus);
  EXPECT_EQ(failed.findings.front().defect,
            Defect::InsecureReferralProofFailed);
}

}  // namespace
