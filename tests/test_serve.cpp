// Frontline serving engine tests (DESIGN.md §5h): stub-trace generation
// is deterministic per seed, the popularity sketch counts and decays, and
// the FrontEnd's per-client outcomes are invariant under the resolve_many
// inflight width — concurrency is an implementation detail, never an
// answer-changing one.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "dnscore/message.hpp"
#include "resolver/resolver.hpp"
#include "scan/world.hpp"
#include "serve/frontend.hpp"
#include "serve/sketch.hpp"
#include "serve/stubs.hpp"

namespace {

using namespace ede;

scan::Population small_population() {
  scan::PopulationConfig config;
  config.total_domains = 300;
  config.seed = 7;
  return scan::generate_population(config);
}

serve::StubOptions small_stub_options() {
  serve::StubOptions options;
  options.clients = 2'000;
  options.queries = 1'500;
  options.duration_ms = 120'000;
  options.seed = 11;
  return options;
}

// --- trace generation ----------------------------------------------------

TEST(StubTrace, IsDeterministicPerSeed) {
  const auto population = small_population();
  const auto options = small_stub_options();
  const auto a = serve::generate_stub_trace(population, options);
  const auto b = serve::generate_stub_trace(population, options);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  ASSERT_EQ(a.id_count, b.id_count);
  for (std::size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].arrival_ms, b.queries[i].arrival_ms);
    EXPECT_EQ(a.queries[i].id, b.queries[i].id);
    EXPECT_EQ(a.queries[i].client, b.queries[i].client);
    EXPECT_EQ(a.queries[i].qname, b.queries[i].qname);
    EXPECT_EQ(a.queries[i].typo, b.queries[i].typo);
    EXPECT_EQ(a.queries[i].retry_of, b.queries[i].retry_of);
  }

  auto reseeded = options;
  reseeded.seed = 12;
  const auto c = serve::generate_stub_trace(population, reseeded);
  bool differs = c.queries.size() != a.queries.size();
  for (std::size_t i = 0; !differs && i < a.queries.size(); ++i) {
    differs = !(a.queries[i].qname == c.queries[i].qname) ||
              a.queries[i].arrival_ms != c.queries[i].arrival_ms;
  }
  EXPECT_TRUE(differs);
}

TEST(StubTrace, IsSortedAndInternallyConsistent) {
  const auto population = small_population();
  const auto options = small_stub_options();
  const auto trace = serve::generate_stub_trace(population, options);

  ASSERT_GE(trace.queries.size(), options.queries);
  std::size_t typos = 0;
  std::size_t retransmits = 0;
  for (std::size_t i = 0; i < trace.queries.size(); ++i) {
    const auto& query = trace.queries[i];
    if (i > 0) {
      const auto& prev = trace.queries[i - 1];
      EXPECT_TRUE(prev.arrival_ms < query.arrival_ms ||
                  (prev.arrival_ms == query.arrival_ms && prev.id < query.id));
    }
    EXPECT_LT(query.id, trace.id_count);
    EXPECT_LT(query.client, options.clients);
    EXPECT_LE(query.arrival_ms + 1, options.duration_ms +
                                        static_cast<sim::SimTimeMs>(
                                            options.retry_timeout_ms) *
                                            (options.max_retries + 1));
    if (query.typo) ++typos;
    if (query.retry_of != serve::kNoRetry) {
      ++retransmits;
      EXPECT_LT(query.retry_of, trace.id_count);
    }
  }
  // Roughly the configured typo share of primaries (±half).
  const auto primaries = trace.queries.size() - retransmits;
  EXPECT_GT(typos, primaries / 20);
  EXPECT_LT(typos, primaries / 5);
  EXPECT_GT(retransmits, 0u);
}

// --- popularity sketch ---------------------------------------------------

TEST(PopularitySketch, ConservativeCountsAndDecay) {
  serve::PopularitySketch::Options options;
  options.decay_interval = 2;
  serve::PopularitySketch sketch(options);
  const auto hot = dns::Name::of("hot.example");

  EXPECT_EQ(sketch.estimate(hot), 0u);
  for (int i = 0; i < 8; ++i) sketch.observe(hot);
  EXPECT_EQ(sketch.estimate(hot), 8u);
  EXPECT_EQ(sketch.estimate(dns::Name::of("cold.example")), 0u);

  sketch.tick();  // 1 of 2: no halving yet
  EXPECT_EQ(sketch.estimate(hot), 8u);
  sketch.tick();  // decay fires
  EXPECT_EQ(sketch.estimate(hot), 4u);
  sketch.tick();
  sketch.tick();
  EXPECT_EQ(sketch.estimate(hot), 2u);
}

// --- the front end over a small serving world ----------------------------

struct ServingStack {
  std::shared_ptr<sim::Clock> clock;
  std::shared_ptr<sim::Network> network;
  std::unique_ptr<scan::ScanWorld> world;
  std::unique_ptr<resolver::RecursiveResolver> resolver;
};

ServingStack make_stack(const scan::Population& population,
                        std::uint64_t seed) {
  ServingStack stack;
  stack.clock = std::make_shared<sim::Clock>();
  stack.network = std::make_shared<sim::Network>(stack.clock, seed);
  sim::LatencyModel latency;
  latency.enabled = true;
  latency.seed = seed;
  stack.network->set_latency(latency);
  scan::WorldOptions world_options;
  world_options.child_zone_ttl = 300;
  world_options.stream_listeners = true;
  stack.world = std::make_unique<scan::ScanWorld>(stack.network, population,
                                                  world_options);
  resolver::ResolverOptions options;
  options.serve_stale = true;
  options.aggressive_nsec_caching = true;
  stack.resolver = std::make_unique<resolver::RecursiveResolver>(
      stack.world->make_resolver(resolver::profile_reference(), options));
  return stack;
}

TEST(FrontEnd, PerClientOutcomesAreInvariantUnderInflight) {
  const auto population = small_population();
  const auto trace =
      serve::generate_stub_trace(population, small_stub_options());

  std::vector<std::vector<serve::ClientAnswer>> runs;
  for (const std::size_t inflight : {std::size_t{1}, std::size_t{256}}) {
    auto stack = make_stack(population, /*seed=*/11);
    serve::FrontEndOptions options;
    options.inflight = inflight;
    serve::FrontEnd frontend(*stack.resolver, *stack.network, options);
    runs.push_back(frontend.serve(trace));
  }

  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    const auto& narrow = runs[0][i];
    const auto& wide = runs[1][i];
    EXPECT_EQ(narrow.client, wide.client) << "query " << i;
    EXPECT_EQ(narrow.rcode, wide.rcode) << "query " << i;
    EXPECT_EQ(narrow.ede, wide.ede) << "query " << i;
    EXPECT_EQ(narrow.suppressed, wide.suppressed) << "query " << i;
  }
}

TEST(FrontEnd, ServingIsDeterministicAndStatsPartition) {
  const auto population = small_population();
  const auto trace =
      serve::generate_stub_trace(population, small_stub_options());

  auto stack_a = make_stack(population, /*seed=*/11);
  serve::FrontEnd frontend_a(*stack_a.resolver, *stack_a.network, {});
  const auto answers_a = frontend_a.serve(trace);

  auto stack_b = make_stack(population, /*seed=*/11);
  serve::FrontEnd frontend_b(*stack_b.resolver, *stack_b.network, {});
  const auto answers_b = frontend_b.serve(trace);

  ASSERT_EQ(answers_a.size(), answers_b.size());
  for (std::size_t i = 0; i < answers_a.size(); ++i) {
    EXPECT_EQ(answers_a[i].rcode, answers_b[i].rcode);
    EXPECT_EQ(answers_a[i].ede, answers_b[i].ede);
    EXPECT_EQ(answers_a[i].latency_ms, answers_b[i].latency_ms);
    EXPECT_EQ(answers_a[i].suppressed, answers_b[i].suppressed);
  }

  const auto& stats = frontend_a.stats();
  EXPECT_EQ(stats.queries, trace.queries.size());
  EXPECT_EQ(stats.served + stats.suppressed_retries, stats.queries);
  EXPECT_LE(stats.cache_answered, stats.served);
  EXPECT_GT(stats.cache_answered, 0u);  // Zipf repeats must hit
  EXPECT_GT(stats.waves, 1u);
}

TEST(FrontEnd, PrefetchRunsOffTheClientPath) {
  const auto population = small_population();
  auto options = small_stub_options();
  options.duration_ms = 400'000;  // several TTL cycles at child_zone_ttl=300
  options.queries = 3'000;
  const auto trace = serve::generate_stub_trace(population, options);

  auto stack = make_stack(population, /*seed=*/11);
  serve::FrontEndOptions fe_options;
  fe_options.prefetch_min_popularity = 2;
  serve::FrontEnd frontend(*stack.resolver, *stack.network, fe_options);
  (void)frontend.serve(trace);
  const auto& stats = frontend.stats();
  EXPECT_GT(stats.prefetch_jobs, 0u);
  EXPECT_GT(stats.prefetch_upstream_queries, 0u);
  // The prefetcher's refresh traffic is accounted separately from the
  // client-facing resolutions.
  EXPECT_GT(stats.upstream_queries, 0u);
}

TEST(FrontEnd, AttachAnswersWireQueriesWithEde) {
  const auto population = small_population();
  auto stack = make_stack(population, /*seed=*/11);
  serve::FrontEnd frontend(*stack.resolver, *stack.network, {});
  const auto address = sim::NodeAddress::of("9.9.9.9");
  frontend.attach(address);

  // A healthy name resolves NOERROR over the wire with the id echoed.
  const scan::DomainSpec* healthy = nullptr;
  for (const auto& spec : population.domains) {
    if (spec.category == scan::Category::Healthy) {
      healthy = &spec;
      break;
    }
  }
  ASSERT_NE(healthy, nullptr);
  dns::Message query =
      dns::make_query(0x1234, dns::Name::of(healthy->fqdn), dns::RRType::A);
  const auto wire = query.serialize();
  const auto result = stack.network->send(sim::NodeAddress::of("192.0.2.50"),
                                          address, crypto::BytesView{wire});
  ASSERT_EQ(result.status, sim::SendStatus::Delivered);
  dns::Message response;
  ASSERT_TRUE(dns::Message::parse_into(crypto::BytesView{result.response},
                                       response));
  EXPECT_TRUE(response.header.qr);
  EXPECT_TRUE(response.header.ra);
  EXPECT_EQ(response.header.id, 0x1234);
  EXPECT_EQ(response.header.rcode, dns::RCode::NOERROR);
  ASSERT_EQ(response.question.size(), 1u);
  EXPECT_EQ(response.question.front().qname, dns::Name::of(healthy->fqdn));
  EXPECT_FALSE(response.answer.empty());
}

}  // namespace
