// Async resolver-core tests: the event scheduler and Task primitives,
// the resolve()/resolve_many() equivalence contracts (classic blocking
// vs engine-at-1 vs engine-at-N on the testbed and the scan world), the
// admission-window/lane accounting of EngineReport, the coalescing-key
// server-set regression and the retry-backoff clamp.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "resolver/resolver.hpp"
#include "resolver/retry.hpp"
#include "scan/parallel.hpp"
#include "simnet/sched.hpp"
#include "testbed/testbed.hpp"

namespace ede::resolver {

/// White-box window into RecursiveResolver's private coalescing types
/// (befriended in resolver.hpp).
struct ResolverTestAccess {
  using Key = RecursiveResolver::CoalesceKey;
  static std::uint64_t fingerprint(
      const std::vector<sim::NodeAddress>& servers) {
    return RecursiveResolver::fingerprint_servers(servers);
  }
};

}  // namespace ede::resolver

namespace {

using namespace ede;
using namespace ede::resolver;

// ---------------------------------------------------------------------
// EventScheduler / Task primitives
// ---------------------------------------------------------------------

sim::Task<int> answer_after(sim::EventScheduler& sched, sim::SimTimeMs delay,
                            int value, std::vector<int>* order = nullptr) {
  co_await sched.sleep_ms(delay);
  if (order != nullptr) order->push_back(value);
  co_return value;
}

TEST(EventScheduler, ResumesInWakeTimeOrder) {
  sim::Clock clock;
  sim::EventScheduler sched(clock);
  const auto epoch = clock.now_ms();
  std::vector<int> order;
  auto late = answer_after(sched, 300, 3, &order);
  auto early = answer_after(sched, 100, 1, &order);
  auto middle = answer_after(sched, 200, 2, &order);
  late.start();
  early.start();
  middle.start();
  sched.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(late.take(), 3);
  EXPECT_EQ(clock.now_ms(), epoch + 300);  // clock follows popped events
}

TEST(EventScheduler, SameInstantFiresInRegistrationOrder) {
  // The determinism tie-break (D1): equal wake times resolve by the
  // monotonic registration sequence, never by handle address.
  sim::Clock clock;
  sim::EventScheduler sched(clock);
  std::vector<int> order;
  std::vector<sim::Task<int>> tasks;
  for (int i = 0; i < 8; ++i)
    tasks.push_back(answer_after(sched, 50, i, &order));
  for (auto& task : tasks) task.start();
  sched.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventScheduler, ZeroSleepStillYieldsToEarlierRegistrations) {
  sim::Clock clock;
  sim::EventScheduler sched(clock);
  std::vector<int> order;
  auto first = answer_after(sched, 0, 1, &order);
  auto second = answer_after(sched, 0, 2, &order);
  first.start();
  second.start();
  EXPECT_TRUE(order.empty());  // both parked, nothing ran yet
  sched.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventScheduler, ClockRebasesBackwardsBetweenTimelines) {
  // Epoch rebasing means a later-registered coroutine can park at an
  // earlier virtual instant; popping its event must SET the clock there,
  // not refuse to move backwards.
  sim::Clock clock;
  sim::EventScheduler sched(clock);
  std::vector<int> order;
  clock.set_ms(1'000);
  auto far = answer_after(sched, 500, 1, &order);  // wakes at 1500
  far.start();
  clock.set_ms(0);  // rebase: next admission starts at the epoch
  auto near = answer_after(sched, 10, 2, &order);  // wakes at 10
  near.start();
  ASSERT_TRUE(sched.run_one());
  EXPECT_EQ(order, (std::vector<int>{2}));
  EXPECT_EQ(clock.now_ms(), 10u);
  ASSERT_TRUE(sched.run_one());
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(clock.now_ms(), 1'500u);
  EXPECT_TRUE(sched.idle());
}

sim::Task<int> doubled(sim::EventScheduler& sched, int value) {
  co_await sched.sleep_ms(5);
  co_return 2 * value;
}

sim::Task<int> chain(sim::EventScheduler& sched, int value) {
  // A child task started by co_await resumes its parent on completion
  // (symmetric transfer), the composition every resolver stage relies on.
  const int a = co_await doubled(sched, value);
  const int b = co_await doubled(sched, a);
  co_return b;
}

TEST(EventScheduler, TaskCompositionPropagatesResults) {
  sim::Clock clock;
  sim::EventScheduler sched(clock);
  auto task = chain(sched, 3);
  task.start();
  while (!task.done() && sched.run_one()) {
  }
  EXPECT_EQ(task.take(), 12);
}

sim::Task<int> throws_after_park(sim::EventScheduler& sched) {
  co_await sched.sleep_ms(1);
  throw std::runtime_error("boom");
}

TEST(EventScheduler, ExceptionsSurfaceThroughTake) {
  sim::Clock clock;
  sim::EventScheduler sched(clock);
  auto task = throws_after_park(sched);
  task.start();
  sched.run_until_idle();
  ASSERT_TRUE(task.done());
  EXPECT_THROW((void)task.take(), std::runtime_error);
}

// ---------------------------------------------------------------------
// RetryPolicy::next_timeout clamp (the UB fix)
// ---------------------------------------------------------------------

TEST(RetryPolicy, BackoffProductIsClampedBeforeTheCast) {
  RetryPolicy retry;
  retry.max_timeout_ms = 6'000;
  retry.backoff_factor = 1e18;  // product overflows uint32_t by far
  EXPECT_EQ(retry.next_timeout(400), 6'000u);
  EXPECT_EQ(retry.next_timeout(6'000), 6'000u);
}

TEST(RetryPolicy, NegativeBackoffFactorStaysSane) {
  RetryPolicy retry;
  retry.max_timeout_ms = 6'000;
  retry.backoff_factor = -3.0;  // pathological config: product < 0
  const auto next = retry.next_timeout(400);
  EXPECT_GE(next, 401u);  // still strictly advances
  EXPECT_LE(next, 6'000u);
}

TEST(RetryPolicy, BackoffStillGrowsNormally) {
  RetryPolicy retry;  // defaults: x2.0, cap 6000
  EXPECT_EQ(retry.next_timeout(400), 800u);
  EXPECT_EQ(retry.next_timeout(800), 1'600u);
  EXPECT_EQ(retry.next_timeout(3'200), 6'000u);
  EXPECT_EQ(retry.next_timeout(6'000), 6'000u);  // capped, no overflow
}

// ---------------------------------------------------------------------
// Coalescing-key server-set regression (S2)
// ---------------------------------------------------------------------

sim::NodeAddress v4(const char* ip) {
  return sim::NodeAddress{*dns::Ipv4Address::parse(ip)};
}

TEST(CoalesceKey, ServerSetIsPartOfTheKey) {
  using Access = ResolverTestAccess;
  const std::vector<sim::NodeAddress> narrow = {v4("192.0.2.1")};
  const std::vector<sim::NodeAddress> wide = {v4("192.0.2.1"),
                                              v4("192.0.2.2")};
  Access::Key against_narrow{dns::Name::of("zone.test"),
                             dns::Name::of("a.zone.test"), dns::RRType::A,
                             Access::fingerprint(narrow)};
  Access::Key against_wide{dns::Name::of("zone.test"),
                           dns::Name::of("a.zone.test"), dns::RRType::A,
                           Access::fingerprint(wide)};
  // The regression: a failure memoized against the narrow server set must
  // not be replayed once the candidate set widens — the keys have to be
  // distinct map entries.
  std::map<Access::Key, int> memo;
  memo[against_narrow] = 1;
  EXPECT_EQ(memo.count(against_wide), 0u);
  memo[against_wide] = 2;
  EXPECT_EQ(memo.size(), 2u);

  // Same set twice fingerprints identically (the memo still coalesces).
  EXPECT_EQ(Access::fingerprint(wide), Access::fingerprint(wide));
  // Order matters (the probe order is part of what was tried).
  const std::vector<sim::NodeAddress> reversed = {v4("192.0.2.2"),
                                                  v4("192.0.2.1")};
  EXPECT_NE(Access::fingerprint(wide), Access::fingerprint(reversed));
  // And the empty set is distinct from any non-empty one.
  EXPECT_NE(Access::fingerprint({}), Access::fingerprint(narrow));
}

// ---------------------------------------------------------------------
// resolve() vs resolve_many() on the testbed (per-case EDE equivalence)
// ---------------------------------------------------------------------

struct CaseOutcome {
  dns::RCode rcode = dns::RCode::NOERROR;
  std::vector<std::uint16_t> ede_codes;
  dnssec::Security security = dnssec::Security::Indeterminate;

  bool operator==(const CaseOutcome&) const = default;
};

CaseOutcome lite(const Outcome& outcome) {
  CaseOutcome out;
  out.rcode = outcome.rcode;
  out.security = outcome.security;
  for (const auto& error : outcome.errors)
    out.ede_codes.push_back(static_cast<std::uint16_t>(error.code));
  return out;
}

TEST(AsyncCore, TestbedCasesMatchClassicResolveExactly) {
  // Two identical worlds (separate networks, same construction), one
  // driven case-by-case through classic resolve(), the other as one
  // resolve_many() batch across every case. Latency stays off, exactly
  // like the classic testbed suites, so the comparison is bit-for-bit.
  auto network_a = std::make_shared<sim::Network>(
      std::make_shared<sim::Clock>(), 42);
  auto network_b = std::make_shared<sim::Network>(
      std::make_shared<sim::Clock>(), 42);
  testbed::Testbed bed_a(network_a);
  testbed::Testbed bed_b(network_b);
  auto resolver_a = bed_a.make_resolver(profile_bind());
  auto resolver_b = bed_b.make_resolver(profile_bind());

  std::vector<CaseOutcome> classic;
  std::vector<ResolveJob> jobs;
  for (const auto& spec : bed_a.cases()) {
    classic.push_back(
        lite(resolver_a.resolve(bed_a.query_name(spec), dns::RRType::A)));
    jobs.push_back({bed_b.query_name(spec), dns::RRType::A});
  }

  std::vector<CaseOutcome> batched(jobs.size());
  const auto report = resolver_b.resolve_many(
      jobs, jobs.size(), [&batched](std::size_t index, Outcome&& outcome) {
        batched[index] = lite(outcome);
      });
  ASSERT_EQ(batched.size(), classic.size());
  for (std::size_t i = 0; i < classic.size(); ++i) {
    EXPECT_EQ(classic[i], batched[i]) << "case " << i << " ("
        << bed_a.cases()[i].label << ")";
  }
  EXPECT_GE(report.max_in_flight, 1u);
  EXPECT_LE(report.max_in_flight, jobs.size());
  // Latency off: waits are free, so the whole batch is instantaneous.
  EXPECT_EQ(report.makespan_ms, 0u);
  EXPECT_EQ(report.total_virtual_ms, 0u);
}

TEST(AsyncCore, EngineWindowOneMatchesEngineWindowWide) {
  // Within the engine family (every resolution epoch-rebased), the
  // admission window must not change any outcome — with latency ON.
  sim::LatencyModel latency;
  latency.enabled = true;

  const auto run = [&](std::size_t window) {
    auto network = std::make_shared<sim::Network>(
        std::make_shared<sim::Clock>(), 7);
    network->set_latency(latency);
    testbed::Testbed bed(network);
    auto resolver = bed.make_resolver(profile_bind());
    std::vector<ResolveJob> jobs;
    for (const auto& spec : bed.cases())
      jobs.push_back({bed.query_name(spec), dns::RRType::A});
    std::vector<CaseOutcome> outcomes(jobs.size());
    const auto report = resolver.resolve_many(
        jobs, window, [&outcomes](std::size_t index, Outcome&& outcome) {
          outcomes[index] = lite(outcome);
        });
    return std::pair{outcomes, report};
  };

  const auto [serial, serial_report] = run(1);
  const auto [wide, wide_report] = run(64);
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], wide[i]) << "case " << i;

  // Window 1 chains everything on one lane: makespan == total.
  EXPECT_EQ(serial_report.max_in_flight, 1u);
  EXPECT_EQ(serial_report.makespan_ms, serial_report.total_virtual_ms);
  // The wide window overlaps waits: the batch gets shorter, not cheaper.
  EXPECT_GT(wide_report.max_in_flight, 1u);
  EXPECT_LT(wide_report.makespan_ms, wide_report.total_virtual_ms);
  EXPECT_GE(wide_report.makespan_ms, wide_report.longest_job_ms);
}

TEST(AsyncCore, EngineReportAccountsLanesHonestly) {
  auto network = std::make_shared<sim::Network>(
      std::make_shared<sim::Clock>(), 11);
  sim::LatencyModel latency;
  latency.enabled = true;
  network->set_latency(latency);
  testbed::Testbed bed(network);
  auto resolver = bed.make_resolver(profile_bind());
  std::vector<ResolveJob> jobs;
  for (const auto& spec : bed.cases())
    jobs.push_back({bed.query_name(spec), dns::RRType::A});

  const auto epoch = network->clock().now_ms();
  std::vector<bool> seen(jobs.size(), false);
  const auto report = resolver.resolve_many(
      jobs, 8, [&seen](std::size_t index, Outcome&&) {
        ASSERT_LT(index, seen.size());
        EXPECT_FALSE(seen[index]);  // delivered exactly once
        seen[index] = true;
      });
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_TRUE(seen[i]) << "job " << i << " never delivered";

  EXPECT_LE(report.max_in_flight, 8u);
  EXPECT_GE(report.max_in_flight, 2u);
  // List scheduling onto 8 lanes: the busiest lane is bounded below by
  // the even split and above by even split + longest job.
  EXPECT_GE(report.makespan_ms * 8, report.total_virtual_ms);
  EXPECT_LE(report.makespan_ms,
            report.total_virtual_ms / 8 + report.longest_job_ms + 1);
  // The engine leaves the shared clock at epoch + makespan.
  EXPECT_EQ(network->clock().now_ms(), epoch + report.makespan_ms);
}

TEST(AsyncCore, EmptyBatchIsANoOp) {
  auto network = std::make_shared<sim::Network>(
      std::make_shared<sim::Clock>(), 3);
  testbed::Testbed bed(network);
  auto resolver = bed.make_resolver(profile_bind());
  bool called = false;
  const auto report = resolver.resolve_many(
      {}, 16, [&called](std::size_t, Outcome&&) { called = true; });
  EXPECT_FALSE(called);
  EXPECT_EQ(report.max_in_flight, 0u);
  EXPECT_EQ(report.makespan_ms, 0u);
}

}  // namespace
