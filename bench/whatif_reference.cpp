// Extension experiment (paper's conclusion): "Further discussions with
// the community, software vendors, and public resolver operators may
// increase result consistency." What if all seven systems shared one
// maximally specific finding→INFO-CODE mapping (including the codes nobody
// had implemented in 2023: 11, 25, 27)?
//
// Re-runs the Table 4 experiment with every system replaced by the
// reference profile and reports: consistency (expect 100 %), diagnostic
// precision (distinct code sets across the 63 cases vs each real vendor),
// and which previously-unused codes become observable.
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "testbed/testbed.hpp"

namespace {

std::vector<std::uint16_t> sorted_codes(const ede::resolver::Outcome& o) {
  std::vector<std::uint16_t> codes;
  for (const auto& error : o.errors)
    codes.push_back(static_cast<std::uint16_t>(error.code));
  std::sort(codes.begin(), codes.end());
  codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
  return codes;
}

}  // namespace

int main() {
  auto network = std::make_shared<ede::sim::Network>(
      std::make_shared<ede::sim::Clock>());
  ede::testbed::Testbed testbed(network);

  // 2023 reality: the seven published systems.
  auto vendors = ede::resolver::all_profiles();
  // The what-if world: everyone ships the reference mapping.
  const auto reference = ede::resolver::profile_reference();

  std::printf("What-if: every resolver ships the ideal RFC 8914 mapping\n");
  std::printf("=========================================================\n\n");

  // Per-vendor diagnostic precision on the testbed.
  std::printf("%-28s %-18s %-18s\n", "system", "cases with EDE",
              "distinct diagnoses");
  const auto measure = [&](const ede::resolver::ResolverProfile& profile) {
    auto resolver = testbed.make_resolver(profile);
    std::set<std::vector<std::uint16_t>> distinct;
    int with_ede = 0;
    for (const auto& spec : testbed.cases()) {
      resolver.flush();
      const auto codes = sorted_codes(
          resolver.resolve(testbed.query_name(spec), ede::dns::RRType::A));
      if (!codes.empty()) {
        ++with_ede;
        distinct.insert(codes);
      }
    }
    std::printf("%-28s %-18d %-18zu\n", profile.name.c_str(), with_ede,
                distinct.size());
    return distinct;
  };
  for (const auto& vendor : vendors) (void)measure(vendor);
  (void)measure(reference);

  // Consistency when everyone runs the reference mapping. The reference
  // keeps Cloudflare's algorithm support; to isolate the *mapping* effect
  // we give all seven instances the identical profile.
  int consistent = 0;
  std::map<std::uint16_t, int> code_usage;
  for (const auto& spec : testbed.cases()) {
    std::vector<std::vector<std::uint16_t>> rows;
    for (int i = 0; i < 7; ++i) {
      auto resolver = testbed.make_resolver(reference);
      rows.push_back(sorted_codes(
          resolver.resolve(testbed.query_name(spec), ede::dns::RRType::A)));
    }
    for (const auto code : rows[0]) code_usage[code] += 1;
    if (std::all_of(rows.begin(), rows.end(),
                    [&](const auto& r) { return r == rows[0]; })) {
      ++consistent;
    }
  }

  std::printf("\nconsistency with a shared mapping : %d/63 (the seven 2023 "
              "systems: 4/63)\n",
              consistent);
  std::printf("INFO-CODEs observable on the testbed under the reference "
              "mapping:\n");
  for (const auto& [code, cases] : code_usage) {
    std::printf("  EDE %-3u (%s): %d cases%s\n", code,
                ede::edns::to_string(static_cast<ede::edns::EdeCode>(code))
                    .c_str(),
                cases,
                (code == 11 || code == 25 || code == 27)
                    ? "   <- unimplemented by every 2023 system"
                    : "");
  }
  std::printf("\nconclusion: the disagreement the paper measures is a "
              "mapping-policy artifact, not a\ndisagreement about root "
              "causes — a registry-blessed mapping would remove it "
              "entirely.\n");
  return 0;
}
