// E1 — regenerates the paper's Table 1: the registered Extended DNS Error
// codes, printed in the paper's two-column layout from our registry
// implementation (and sanity-checked against the expected snapshot size).
#include <cstdio>

#include "edns/ede.hpp"

int main() {
  const auto& registry = ede::edns::ede_registry();
  std::printf("Table 1 — Registered Extended DNS Error codes "
              "(%zu entries)\n\n",
              registry.size());
  std::printf("%-4s %-38s %-4s %-38s\n", "Code", "Description", "Code",
              "Description");
  const std::size_t half = (registry.size() + 1) / 2;
  for (std::size_t i = 0; i < half; ++i) {
    const auto& left = registry[i];
    std::printf("%-4u %-38s", static_cast<unsigned>(left.code),
                std::string(left.name).c_str());
    if (half + i < registry.size()) {
      const auto& right = registry[half + i];
      std::printf(" %-4u %-38s", static_cast<unsigned>(right.code),
                  std::string(right.name).c_str());
    }
    std::printf("\n");
  }
  std::printf("\nsource documents:\n");
  std::printf("  RFC 8914 : codes 0-24\n");
  std::printf("  later IANA registrations : codes 25-29\n");
  std::printf("\nregistry size matches the paper's snapshot: %s\n",
              registry.size() == 30 ? "yes (30 codes)" : "NO");
  return registry.size() == 30 ? 0 : 1;
}
