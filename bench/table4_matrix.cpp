// E3 — regenerates the paper's Table 4: the 63×7 matrix of EDE codes each
// emulated resolver returns for the testbed subdomains, plus the paper's
// headline aggregates: cases consistent across all systems (expect 4/63,
// i.e. 94 % disagreement), number of distinct INFO-CODEs triggered
// (expect 12), and the per-system specificity ranking (Cloudflare first).
// The published matrix is embedded as ground truth and cell fidelity is
// reported at the end.
#include <algorithm>
#include <cstdio>
#include <set>

#include "testbed/expected.hpp"
#include "testbed/testbed.hpp"

namespace {

using ede::resolver::Outcome;

std::vector<std::uint16_t> sorted_codes(const Outcome& outcome) {
  std::vector<std::uint16_t> codes;
  for (const auto& error : outcome.errors)
    codes.push_back(static_cast<std::uint16_t>(error.code));
  std::sort(codes.begin(), codes.end());
  codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
  return codes;
}

std::string render(const std::vector<std::uint16_t>& codes) {
  if (codes.empty()) return "None";
  std::string out;
  for (const auto code : codes) {
    if (!out.empty()) out += ',';
    out += std::to_string(code);
  }
  return out;
}

}  // namespace

int main() {
  auto clock = std::make_shared<ede::sim::Clock>();
  auto network = std::make_shared<ede::sim::Network>(clock);
  ede::testbed::Testbed testbed(network);

  const auto profiles = ede::resolver::all_profiles();
  std::vector<ede::resolver::RecursiveResolver> resolvers;
  resolvers.reserve(profiles.size());
  for (const auto& profile : profiles)
    resolvers.push_back(testbed.make_resolver(profile));

  std::printf("Table 4 — subdomains and extended error codes returned "
              "(emulated)\n\n");
  std::printf("%-26s", "subdomain");
  for (const auto& profile : profiles) {
    std::printf(" %-10s", profile.name.substr(0, 10).c_str());
  }
  std::printf("\n");

  const auto& expected = ede::testbed::expected_table4();
  int consistent = 0;
  int matched_cells = 0;
  int total_cells = 0;
  std::set<std::uint16_t> unique_codes;
  std::vector<int> specificity(profiles.size(), 0);

  const auto& cases = testbed.cases();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& spec = cases[i];
    const auto qname = testbed.query_name(spec);

    std::vector<std::vector<std::uint16_t>> rows;
    for (std::size_t p = 0; p < resolvers.size(); ++p) {
      const auto outcome = resolvers[p].resolve(qname, ede::dns::RRType::A);
      rows.push_back(sorted_codes(outcome));
      for (const auto code : rows.back()) unique_codes.insert(code);
      if (!rows.back().empty()) specificity[p] += 1;
    }

    std::printf("%-26s", spec.label.c_str());
    for (std::size_t p = 0; p < rows.size(); ++p) {
      const bool ok = expected[i].codes[p] == rows[p];
      matched_cells += ok ? 1 : 0;
      ++total_cells;
      std::printf(" %-10s", (render(rows[p]) + (ok ? "" : "*")).c_str());
    }
    std::printf("\n");

    const bool all_same = std::all_of(
        rows.begin(), rows.end(),
        [&](const std::vector<std::uint16_t>& r) { return r == rows[0]; });
    if (all_same) ++consistent;
  }

  std::printf("\n('*' marks a cell that differs from the paper's published "
              "Table 4)\n\n");
  std::printf("== Aggregates (paper in parentheses) ==\n");
  std::printf("consistent cases     : %d/63 (paper: 4/63)\n", consistent);
  std::printf("disagreement         : %.1f%% (paper: 94%%)\n",
              100.0 * (63 - consistent) / 63.0);
  std::printf("unique INFO-CODEs    : %zu (paper: 12)\n", unique_codes.size());
  std::printf("cell fidelity        : %d/%d (%.1f%%)\n", matched_cells,
              total_cells, 100.0 * matched_cells / total_cells);
  std::printf("\ncases with an EDE per system (specificity):\n");
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    std::printf("  %-24s %d/63\n", profiles[p].name.c_str(), specificity[p]);
  }
  const auto most = std::distance(
      specificity.begin(),
      std::max_element(specificity.begin(), specificity.end()));
  std::printf("most specific system : %s (paper: Cloudflare DNS)\n",
              profiles[static_cast<std::size_t>(most)].name.c_str());
  return 0;
}
