// E5 — regenerates the paper's Figure 1: the CDF of the per-TLD ratio of
// domains that trigger EDE codes, split into gTLDs and ccTLDs. Expected
// shape: ~38 % of gTLDs and ~4 % of ccTLDs at ratio 0, a small set of
// fully-misconfigured TLDs at 100 %, ccTLDs generally worse than gTLDs.
//
// Usage: fig1_tld_cdf [total_domains] [seed]
#include <cstdio>
#include <cstdlib>

#include "scan/export.hpp"
#include "scan/report.hpp"

int main(int argc, char** argv) {
  ede::scan::PopulationConfig config;
  config.total_domains = 150'000;
  if (argc > 1) config.total_domains = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) config.seed = std::strtoull(argv[2], nullptr, 10);

  const auto population = ede::scan::generate_population(config);
  auto clock = std::make_shared<ede::sim::Clock>();
  auto network = std::make_shared<ede::sim::Network>(clock);
  ede::scan::ScanWorld world(network, population);
  auto resolver = world.make_resolver(ede::resolver::profile_cloudflare());
  world.prewarm(resolver);

  std::printf("scanning %zu domains across %zu TLDs...\n\n",
              population.domains.size(), population.tlds.size());
  const auto result = ede::scan::Scanner{}.run(resolver, population);
  std::fputs(ede::scan::render_figure1(result, population).c_str(), stdout);
  if (ede::scan::write_file("fig1_tld_cdf.csv",
                            ede::scan::figure1_csv(result, population))) {
    std::printf("\nseries written to fig1_tld_cdf.csv\n");
  }
  return 0;
}
