// E5 — regenerates the paper's Figure 1: the CDF of the per-TLD ratio of
// domains that trigger EDE codes, split into gTLDs and ccTLDs. Expected
// shape: ~38 % of gTLDs and ~4 % of ccTLDs at ratio 0, a small set of
// fully-misconfigured TLDs at 100 %, ccTLDs generally worse than gTLDs.
//
// Usage: fig1_tld_cdf [total_domains] [seed] [--shards N]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "scan/export.hpp"
#include "scan/report.hpp"

int main(int argc, char** argv) {
  ede::scan::PopulationConfig config;
  config.total_domains = 150'000;
  std::size_t shards = 0;  // 0 = hardware_concurrency
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoull(argv[++i], nullptr, 10);
    } else if (positional == 0) {
      config.total_domains = std::strtoull(argv[i], nullptr, 10);
      ++positional;
    } else if (positional == 1) {
      config.seed = std::strtoull(argv[i], nullptr, 10);
      ++positional;
    }
  }

  const auto population = ede::scan::generate_population(config);
  ede::scan::ParallelScanOptions options;
  options.shards = shards;

  std::printf("scanning %zu domains across %zu TLDs...\n\n",
              population.domains.size(), population.tlds.size());
  const auto scan = ede::scan::run_parallel_scan(
      population, ede::resolver::profile_cloudflare(), options);
  std::fputs(ede::scan::render_figure1(scan.merged, population).c_str(),
             stdout);
  std::printf("\n%s", ede::scan::render_shard_summary(scan).c_str());
  if (ede::scan::write_file("fig1_tld_cdf.csv",
                            ede::scan::figure1_csv(scan.merged, population))) {
    std::printf("\nseries written to fig1_tld_cdf.csv\n");
  }
  return 0;
}
