// E7 — google-benchmark microbenchmarks backing the engineering claims:
// wire codec throughput, hashing, NSEC3 iteration cost, signing and
// validation, full recursive resolutions over the simulated network, and
// end-to-end scan rate (the paper's probe traffic peaked at 11.5 k qps).
#include <benchmark/benchmark.h>

#include "crypto/sha1.hpp"
#include "dnscore/arena.hpp"
#include "crypto/sha2.hpp"
#include "dnssec/nsec3.hpp"
#include "dnssec/sign.hpp"
#include "edns/edns.hpp"
#include "scan/scanner.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace ede;

dns::Message sample_message() {
  dns::Message msg =
      dns::make_query(1, dns::Name::of("www.example.com"), dns::RRType::A);
  msg.header.qr = true;
  msg.answer.push_back({dns::Name::of("www.example.com"), dns::RRType::A,
                        dns::RRClass::IN, 3600,
                        dns::ARdata{*dns::Ipv4Address::parse("192.0.2.1")}});
  msg.authority.push_back({dns::Name::of("example.com"), dns::RRType::NS,
                           dns::RRClass::IN, 86400,
                           dns::NsRdata{dns::Name::of("ns1.example.com")}});
  edns::Edns e;
  e.dnssec_ok = true;
  e.add({edns::EdeCode::NetworkError, "192.0.2.7:53 rcode=REFUSED"});
  edns::set_edns(msg, e);
  return msg;
}

void BM_MessageSerialize(benchmark::State& state) {
  const auto msg = sample_message();
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.serialize());
  }
}
BENCHMARK(BM_MessageSerialize);

void BM_MessageParse(benchmark::State& state) {
  const auto wire = sample_message().serialize();
  for (auto _ : state) {
    auto parsed = dns::Message::parse(wire);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_MessageParse);

// --- codec ----------------------------------------------------------------
// The flat-Name / compression / arena hot path. Baselines live in
// bench/perf_baseline_codec.json; tools/verify.sh prints deltas against it.

void BM_NameParse(benchmark::State& state) {
  for (auto _ : state) {
    auto name = dns::Name::parse("a.long-ish.label.chain.example.com");
    benchmark::DoNotOptimize(name);
  }
}
BENCHMARK(BM_NameParse);

void BM_NameReadWire(benchmark::State& state) {
  // A compression-pointer-free name read: the parse side of every record.
  dns::WireWriter w;
  w.write_name_uncompressed(dns::Name::of("a.long-ish.label.chain.example.com"));
  const auto wire = std::move(w).take();
  for (auto _ : state) {
    dns::WireReader r(wire);
    benchmark::DoNotOptimize(r.read_name());
  }
}
BENCHMARK(BM_NameReadWire);

void BM_NameHashCompare(benchmark::State& state) {
  // The cache-key path: RFC 4343 case-insensitive hash + equality.
  const auto a = dns::Name::of("WWW.Example.COM");
  const auto b = dns::Name::of("www.example.com");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.hash());
    benchmark::DoNotOptimize(a.equals(b));
  }
}
BENCHMARK(BM_NameHashCompare);

dns::Message compression_heavy_message() {
  // A referral-shaped response: many owner names sharing suffixes, which
  // is exactly what the writer's compression table exists for.
  dns::Message msg = dns::make_query(
      7, dns::Name::of("deep.label.stack.child.example.com"), dns::RRType::A);
  msg.header.qr = true;
  for (int i = 0; i < 8; ++i) {
    const auto ns =
        dns::Name::of("ns" + std::to_string(i) + ".child.example.com");
    msg.authority.push_back({dns::Name::of("child.example.com"),
                             dns::RRType::NS, dns::RRClass::IN, 86400,
                             dns::NsRdata{ns}});
    msg.additional.push_back(
        {ns, dns::RRType::A, dns::RRClass::IN, 3600,
         dns::ARdata{dns::Ipv4Address{0xc0000200u + static_cast<unsigned>(i)}}});
  }
  return msg;
}

void BM_CompressedRoundTrip(benchmark::State& state) {
  const auto msg = compression_heavy_message();
  dns::MessageArena arena;
  for (auto _ : state) {
    const auto wire = arena.serialize(msg);
    auto ok = arena.parse(wire);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(arena.message().additional.size());
  }
}
BENCHMARK(BM_CompressedRoundTrip);

void BM_ArenaSerialize(benchmark::State& state) {
  // Same payload as BM_MessageSerialize but through the reusable arena —
  // the delta between the two is the allocation cost the arena removes.
  const auto msg = sample_message();
  dns::MessageArena arena;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena.serialize(msg));
  }
}
BENCHMARK(BM_ArenaSerialize);

void BM_Sha256(benchmark::State& state) {
  const crypto::Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Sha1(benchmark::State& state) {
  const crypto::Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha1::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(1024);

void BM_Nsec3Hash(benchmark::State& state) {
  const auto name = dns::Name::of("some-registered-domain.example");
  const crypto::Bytes salt = {0xaa, 0xbb, 0xcc, 0xdd};
  const auto iterations = static_cast<std::uint16_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dnssec::nsec3_hash(name, salt, iterations));
  }
}
// 0 is the RFC 9276 recommendation; 200 is the testbed's worst case; 2500
// the historical ceiling — the cost scaling is the reason for the advice.
BENCHMARK(BM_Nsec3Hash)->Arg(0)->Arg(10)->Arg(200)->Arg(2500);

void BM_SignRrset(benchmark::State& state) {
  const auto zone = dns::Name::of("example.com");
  const auto zsk = dnssec::make_zsk(zone, 8);
  const dns::RRset rrset{zone, dns::RRType::A, dns::RRClass::IN, 3600,
                         {dns::ARdata{*dns::Ipv4Address::parse("192.0.2.1")}}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dnssec::sign_rrset(rrset, zsk, zone, {1000, 2000}));
  }
}
BENCHMARK(BM_SignRrset);

void BM_VerifyRrset(benchmark::State& state) {
  const auto zone = dns::Name::of("example.com");
  const auto zsk = dnssec::make_zsk(zone, 8);
  const dns::RRset rrset{zone, dns::RRType::A, dns::RRClass::IN, 3600,
                         {dns::ARdata{*dns::Ipv4Address::parse("192.0.2.1")}}};
  const auto sig = dnssec::sign_rrset(rrset, zsk, zone, {1000, 2000});
  for (auto _ : state) {
    benchmark::DoNotOptimize(dnssec::verify_rrset(rrset, sig, zsk.dnskey));
  }
}
BENCHMARK(BM_VerifyRrset);

void BM_SignZone(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    zone::Zone z(dns::Name::of("bench.example"));
    dns::SoaRdata soa;
    soa.mname = dns::Name::of("ns1.bench.example");
    soa.rname = dns::Name::of("hostmaster.bench.example");
    z.add(z.origin(), dns::RRType::SOA, soa);
    z.add(z.origin(), dns::RRType::NS,
          dns::NsRdata{dns::Name::of("ns1.bench.example")});
    for (int i = 0; i < state.range(0); ++i) {
      z.add(dns::Name::of("host" + std::to_string(i) + ".bench.example"),
            dns::RRType::A, dns::ARdata{dns::Ipv4Address{0x5db8d801u + i}});
    }
    const auto keys = zone::make_zone_keys(z.origin());
    state.ResumeTiming();
    zone::sign_zone(z, keys, {});
    benchmark::DoNotOptimize(z.record_count());
  }
}
BENCHMARK(BM_SignZone)->Arg(10)->Arg(100);

void BM_FullResolution(benchmark::State& state) {
  auto network = std::make_shared<sim::Network>(
      std::make_shared<sim::Clock>());
  testbed::Testbed bed(network);
  auto resolver = bed.make_resolver(resolver::profile_cloudflare());
  const auto qname = dns::Name::of("valid.extended-dns-errors.com");
  for (auto _ : state) {
    resolver.flush();  // measure cold full-chain resolutions
    benchmark::DoNotOptimize(resolver.resolve(qname, dns::RRType::A));
  }
}
BENCHMARK(BM_FullResolution);

void BM_CachedResolution(benchmark::State& state) {
  auto network = std::make_shared<sim::Network>(
      std::make_shared<sim::Clock>());
  testbed::Testbed bed(network);
  auto resolver = bed.make_resolver(resolver::profile_cloudflare());
  const auto qname = dns::Name::of("valid.extended-dns-errors.com");
  (void)resolver.resolve(qname, dns::RRType::A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.resolve(qname, dns::RRType::A));
  }
}
BENCHMARK(BM_CachedResolution);

void BM_ScanThroughput(benchmark::State& state) {
  scan::PopulationConfig config;
  config.total_domains = 4000;
  const auto population = scan::generate_population(config);
  auto network = std::make_shared<sim::Network>(
      std::make_shared<sim::Clock>());
  scan::ScanWorld world(network, population);
  auto resolver = world.make_resolver(resolver::profile_cloudflare());
  world.prewarm(resolver);

  std::size_t domains = 0;
  for (auto _ : state) {
    const auto result = scan::Scanner{}.run(resolver, population);
    domains += result.total_domains;
    benchmark::DoNotOptimize(result.domains_with_ede);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(domains));
  state.counters["domains/s"] = benchmark::Counter(
      static_cast<double>(domains), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScanThroughput)->Unit(benchmark::kMillisecond);

// --- infra cache -----------------------------------------------------------
// The hot path of server selection: every candidate consults
// expected_rtt_ms + held_down before a packet is spent, and every exchange
// reports back. Baselines live in bench/perf_baseline_infra.json.

sim::NodeAddress pool_address(int i) {
  return sim::NodeAddress::of(std::to_string(185 + i / 62'500) + ".30." +
                              std::to_string((i / 250) % 250) + "." +
                              std::to_string(1 + i % 250));
}

void BM_InfraCacheReport(benchmark::State& state) {
  resolver::InfraCache cache;
  std::vector<sim::NodeAddress> addrs;
  for (int i = 0; i < state.range(0); ++i) {
    addrs.push_back(pool_address(i));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& addr = addrs[i++ % addrs.size()];
    // 1:3 failure:success mix, roughly the wild scan's lame ratio ceiling.
    if (i % 4 == 0) {
      cache.report_failure(addr, resolver::InfraCache::FailureKind::Timeout,
                           1'000'000);
    } else {
      cache.report_success(addr, static_cast<std::uint32_t>(20 + i % 7));
    }
    benchmark::DoNotOptimize(cache.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_InfraCacheReport)->Arg(16)->Arg(1024)->Arg(65536);

void BM_InfraCacheSelect(benchmark::State& state) {
  resolver::InfraCache cache;
  std::vector<sim::NodeAddress> addrs;
  for (int i = 0; i < state.range(0); ++i) {
    addrs.push_back(pool_address(i));
    cache.report_success(addrs.back(), 20 + i % 40);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& addr = addrs[i++ % addrs.size()];
    benchmark::DoNotOptimize(cache.expected_rtt_ms(addr));
    benchmark::DoNotOptimize(cache.held_down(addr, 1'000'000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(2 * state.iterations()));
}
BENCHMARK(BM_InfraCacheSelect)->Arg(16)->Arg(1024)->Arg(65536);

// The macro-level claim behind the cache: resolving through a testbed
// whose authority keeps timing out costs measurably fewer packets once
// the dead server earns its hold-down. items == packets saved per run.
void BM_InfraCacheHolddownResolution(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  auto clock = std::make_shared<sim::Clock>();
  auto network = std::make_shared<sim::Network>(clock);
  testbed::Testbed bed(network);
  const auto dead = bed.server_address("valid").value();
  network->inject_fault(dead, sim::Fault::timeout());
  resolver::ResolverOptions options;
  options.infra.enabled = enabled;
  options.serve_stale = false;
  auto resolver = bed.make_resolver(resolver::profile_cloudflare(), options);
  const auto qname = dns::Name::of("valid.extended-dns-errors.com");

  std::uint64_t packets = 0;
  for (auto _ : state) {
    // Distinct qtypes defeat the servfail cache so every iteration walks
    // to the (dead) authority; the infra cache is what cuts the probes.
    const auto before = network->stats().packets_sent;
    benchmark::DoNotOptimize(resolver.resolve(qname, dns::RRType::TXT));
    benchmark::DoNotOptimize(resolver.resolve(qname, dns::RRType::MX));
    resolver.cache().clear();
    packets += network->stats().packets_sent - before;
  }
  state.counters["packets/iter"] = benchmark::Counter(
      static_cast<double>(packets), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_InfraCacheHolddownResolution)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
