// E6 — regenerates the paper's Figure 2: the distribution of
// EDE-triggering domains across the Tranco top-1M ranking. Expected
// shape: an (approximately) straight diagonal — misconfigured domains are
// evenly spread across popularity ranks — with the paper's 22.1 k overlap
// and 12.2 k-NOERROR split reproduced at scale.
//
// Usage: fig2_tranco_cdf [total_domains] [seed] [--shards N]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "scan/export.hpp"
#include "scan/report.hpp"

int main(int argc, char** argv) {
  ede::scan::PopulationConfig config;
  config.total_domains = 150'000;
  std::size_t shards = 0;  // 0 = hardware_concurrency
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoull(argv[++i], nullptr, 10);
    } else if (positional == 0) {
      config.total_domains = std::strtoull(argv[i], nullptr, 10);
      ++positional;
    } else if (positional == 1) {
      config.seed = std::strtoull(argv[i], nullptr, 10);
      ++positional;
    }
  }

  const auto population = ede::scan::generate_population(config);
  ede::scan::ParallelScanOptions options;
  options.shards = shards;

  std::printf("scanning %zu domains...\n\n", population.domains.size());
  const auto scan = ede::scan::run_parallel_scan(
      population, ede::resolver::profile_cloudflare(), options);
  std::fputs(ede::scan::render_figure2(scan.merged, population).c_str(),
             stdout);
  std::printf("\n%s", ede::scan::render_shard_summary(scan).c_str());
  if (ede::scan::write_file("fig2_tranco_cdf.csv",
                            ede::scan::figure2_csv(scan.merged))) {
    std::printf("\nseries written to fig2_tranco_cdf.csv\n");
  }
  return 0;
}
