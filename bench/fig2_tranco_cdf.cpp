// E6 — regenerates the paper's Figure 2: the distribution of
// EDE-triggering domains across the Tranco top-1M ranking. Expected
// shape: an (approximately) straight diagonal — misconfigured domains are
// evenly spread across popularity ranks — with the paper's 22.1 k overlap
// and 12.2 k-NOERROR split reproduced at scale.
//
// Usage: fig2_tranco_cdf [total_domains] [seed]
#include <cstdio>
#include <cstdlib>

#include "scan/export.hpp"
#include "scan/report.hpp"

int main(int argc, char** argv) {
  ede::scan::PopulationConfig config;
  config.total_domains = 150'000;
  if (argc > 1) config.total_domains = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) config.seed = std::strtoull(argv[2], nullptr, 10);

  const auto population = ede::scan::generate_population(config);
  auto clock = std::make_shared<ede::sim::Clock>();
  auto network = std::make_shared<ede::sim::Network>(clock);
  ede::scan::ScanWorld world(network, population);
  auto resolver = world.make_resolver(ede::resolver::profile_cloudflare());
  world.prewarm(resolver);

  std::printf("scanning %zu domains...\n\n", population.domains.size());
  const auto result = ede::scan::Scanner{}.run(resolver, population);
  std::fputs(ede::scan::render_figure2(result, population).c_str(), stdout);
  if (ede::scan::write_file("fig2_tranco_cdf.csv",
                            ede::scan::figure2_csv(result))) {
    std::printf("\nseries written to fig2_tranco_cdf.csv\n");
  }
  return 0;
}
