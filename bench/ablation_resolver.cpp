// E8 — ablations for the design choices DESIGN.md calls out:
//
//  A1. Finding specificity: collapse every DNSSEC finding to the generic
//      DNSSEC Bogus (6) and measure how much diagnostic information the
//      testbed loses (distinct diagnoses before/after).
//  B1. Caching: cache on vs off — upstream queries for a repeated workload.
//  B2. Stale answers: availability of answers when authorities die.
//  C1. Resolution early-exit vs exhaustive NS probing: how many lame
//      delegations a scan detects (the paper notes its count is a lower
//      bound because resolution stops at the first responsive server).
#include <cstdio>
#include <set>

#include "scan/scanner.hpp"
#include "testbed/expected.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace ede;

void ablation_specificity() {
  std::printf("== A1: finding->code specificity ==\n");
  auto network = std::make_shared<sim::Network>(
      std::make_shared<sim::Clock>());
  testbed::Testbed bed(network);

  // The full Cloudflare mapping vs a collapsed variant that reports every
  // validation defect as DNSSEC Bogus (6).
  auto specific = resolver::profile_cloudflare();
  auto collapsed = specific;
  collapsed.name = "Cloudflare (collapsed to 6)";
  for (auto& [defect, code] : collapsed.mapping) {
    const auto value = static_cast<std::uint16_t>(code);
    const bool dnssec_code = value <= 12 || value == 25 || value == 27;
    if (dnssec_code) code = edns::EdeCode::DnssecBogus;
  }

  for (auto* profile : {&specific, &collapsed}) {
    auto resolver = bed.make_resolver(*profile);
    std::set<std::vector<std::uint16_t>> distinct;
    int with_ede = 0;
    for (const auto& spec : bed.cases()) {
      resolver.flush();
      const auto outcome =
          resolver.resolve(bed.query_name(spec), dns::RRType::A);
      std::vector<std::uint16_t> codes;
      for (const auto& e : outcome.errors)
        codes.push_back(static_cast<std::uint16_t>(e.code));
      std::sort(codes.begin(), codes.end());
      if (!codes.empty()) {
        ++with_ede;
        distinct.insert(codes);
      }
    }
    std::printf("  %-28s cases-with-EDE=%d distinct-diagnoses=%zu\n",
                profile->name.c_str(), with_ede, distinct.size());
  }
  std::printf("  -> the mapping table, not the validator, is what separates "
              "a precise vendor from a generic one\n\n");
}

void ablation_cache() {
  std::printf("== B1: cache on/off (100 repeated resolutions) ==\n");
  for (const bool enabled : {true, false}) {
    auto network = std::make_shared<sim::Network>(
        std::make_shared<sim::Clock>());
    testbed::Testbed bed(network);
    resolver::ResolverOptions options;
    options.cache.enabled = enabled;
    auto resolver = bed.make_resolver(resolver::profile_cloudflare(), options);
    const auto qname = dns::Name::of("valid.extended-dns-errors.com");
    for (int i = 0; i < 100; ++i) (void)resolver.resolve(qname, dns::RRType::A);
    std::printf("  cache %-3s : %llu upstream packets\n",
                enabled ? "on" : "off",
                static_cast<unsigned long long>(
                    network->stats().packets_sent));
  }
  std::printf("\n");
}

void ablation_stale() {
  std::printf("== B2: serve-stale on/off when every authority dies ==\n");
  for (const bool serve_stale : {true, false}) {
    auto clock = std::make_shared<sim::Clock>();
    auto network = std::make_shared<sim::Network>(clock);
    testbed::Testbed bed(network);
    resolver::ResolverOptions options;
    options.serve_stale = serve_stale;
    auto resolver = bed.make_resolver(resolver::profile_cloudflare(), options);
    const auto qname = dns::Name::of("valid.extended-dns-errors.com");
    (void)resolver.resolve(qname, dns::RRType::A);
    network->detach(sim::NodeAddress::of("93.184.218.1"));
    clock->advance(3 * 3600);
    const auto outcome = resolver.resolve(qname, dns::RRType::A);
    std::printf("  serve-stale %-3s : rcode=%s codes=",
                serve_stale ? "on" : "off",
                dns::to_string(outcome.rcode).c_str());
    for (const auto& e : outcome.errors)
      std::printf("%u ", static_cast<unsigned>(e.code));
    std::printf("\n");
  }
  std::printf("  -> stale serving converts outages into NOERROR + EDE 3/22, "
              "the paper's §4.2.11 pattern\n\n");
}

void ablation_probing() {
  std::printf("== C1: first-success vs exhaustive nameserver probing ==\n");
  scan::PopulationConfig config;
  config.total_domains = 20'000;
  const auto population = scan::generate_population(config);

  for (const bool exhaustive : {false, true}) {
    auto network = std::make_shared<sim::Network>(
        std::make_shared<sim::Clock>());
    scan::ScanWorld world(network, population);
    resolver::ResolverOptions options;
    options.exhaustive_ns_probing = exhaustive;
    auto resolver =
        world.make_resolver(resolver::profile_cloudflare(), options);
    world.prewarm(resolver);
    const auto result = scan::Scanner{}.run(resolver, population);
    const auto lame23 = result.per_code.count(23)
                            ? result.per_code.at(23).domains
                            : 0;
    std::printf("  %-14s : domains-with-EDE=%zu EDE23=%zu upstream=%llu\n",
                exhaustive ? "exhaustive" : "first-success",
                result.domains_with_ede, lame23,
                static_cast<unsigned long long>(result.upstream_queries));
  }
  std::printf("  -> exhaustive probing surfaces partially-lame domains the "
              "paper's methodology (and ours, by default) undercounts\n");
}

}  // namespace

int main() {
  ablation_specificity();
  ablation_cache();
  ablation_stale();
  ablation_probing();
  return 0;
}
