// Frontline serving benchmark (DESIGN.md §5h): drive a Zipf-distributed
// stub-client population through the FrontEnd + async resolver stack and
// measure qps (wall), p50/p95/p99 answer latency (virtual), client-visible
// cache-hit rate, upstream-query counts and per-client EDE delivery.
//
// One invocation runs up to three serving passes over the same trace —
// the full engine plus two controls (--no-prefetch / --no-aggressive are
// forced off for their control run) — so each optimization's metric
// movement is computed inside one report:
//   * prefetch       -> client-visible hit-rate lift vs. no_prefetch
//   * RFC 8198       -> upstream-query reduction vs. no_aggressive
// plus the serve-stale-under-authority-outage scenario: a warmed cache,
// expired TTLs, every healthy authority dark — clients keep getting
// answers with EDE 3 (Stale Answer) / EDE 19 (Stale NXDOMAIN Answer)
// while p99 stays under a machine-checked bound, and recovery is clean
// once the outage window closes. Invariant violations land in the report
// AND the exit code.
//
// Usage: serve_qps [--domains N] [--clients N] [--queries N]
//                  [--duration-ms N] [--seed N] [--inflight N]
//                  [--wave-ms N] [--nx-fraction F] [--no-prefetch]
//                  [--no-aggressive] [--no-controls] [--no-outage]
//                  [--report FILE] [--json FILE]
//
// --report writes the deterministic serving report (byte-stable for a
// fixed seed: tools/verify.sh cmp's two runs). --json writes the
// wall-clock measurement document tools/perf_smoke.py --serve gates
// against bench/perf_baseline_serve.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "resolver/profile.hpp"
#include "resolver/resolver.hpp"
#include "scan/export.hpp"
#include "scan/world.hpp"
#include "serve/frontend.hpp"
#include "serve/report.hpp"
#include "serve/stubs.hpp"

namespace {

using namespace ede;

struct BenchConfig {
  std::size_t domains = 4'000;
  serve::StubOptions stub;
  std::size_t inflight = 256;
  sim::SimTimeMs wave_ms = 1'000;
  bool prefetch = true;
  bool aggressive = true;
  bool controls = true;
  bool outage = true;
  std::string report_path;
  std::string json_path;
};

/// Child-zone TTL for the serving world: short enough that records
/// expire (and the prefetcher has work) several times within the trace.
constexpr std::uint32_t kServeTtl = 300;

/// Outage scenario p99 bound: the retry ladder must give up and serve
/// stale well under this (profile_reference worst case is seconds).
constexpr sim::SimTimeMs kOutageP99BoundMs = 15'000;

struct ServingStack {
  std::shared_ptr<sim::Clock> clock;
  std::shared_ptr<sim::Network> network;
  std::unique_ptr<scan::ScanWorld> world;
  std::unique_ptr<resolver::RecursiveResolver> resolver;
  std::unique_ptr<serve::FrontEnd> frontend;
};

ServingStack make_stack(const scan::Population& population,
                        const BenchConfig& config, bool prefetch,
                        bool aggressive) {
  ServingStack stack;
  stack.clock = std::make_shared<sim::Clock>();
  stack.network =
      std::make_shared<sim::Network>(stack.clock, config.stub.seed);
  sim::LatencyModel latency;
  latency.enabled = true;
  latency.seed = config.stub.seed;
  stack.network->set_latency(latency);

  scan::WorldOptions world_options;
  world_options.child_zone_ttl = kServeTtl;
  world_options.stream_listeners = true;
  stack.world = std::make_unique<scan::ScanWorld>(stack.network, population,
                                                  world_options);

  resolver::ResolverOptions options;
  options.serve_stale = true;
  options.aggressive_nsec_caching = aggressive;
  stack.resolver.reset(new resolver::RecursiveResolver(
      stack.world->make_resolver(resolver::profile_reference(), options)));

  serve::FrontEndOptions frontend_options;
  frontend_options.inflight = config.inflight;
  frontend_options.wave_ms = config.wave_ms;
  frontend_options.prefetch = prefetch;
  stack.frontend = std::make_unique<serve::FrontEnd>(
      *stack.resolver, *stack.network, frontend_options);
  return stack;
}

struct PassResult {
  serve::RunSummary summary;
  double wall_seconds = 0.0;
};

PassResult run_pass(const std::string& label,
                    const scan::Population& population,
                    const serve::StubTrace& trace, const BenchConfig& config,
                    bool prefetch, bool aggressive) {
  auto stack = make_stack(population, config, prefetch, aggressive);
  const auto cache_before = stack.resolver->cache().stats();
  const auto start = std::chrono::steady_clock::now();
  const auto answers = stack.frontend->serve(trace);
  const auto wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  auto cache_delta = stack.resolver->cache().stats();
  cache_delta.lookups -= cache_before.lookups;
  cache_delta.hits -= cache_before.hits;
  cache_delta.misses -= cache_before.misses;
  cache_delta.stale_hits -= cache_before.stale_hits;
  PassResult result;
  result.summary = serve::summarize_run(label, answers,
                                        stack.frontend->stats(), cache_delta);
  result.wall_seconds = wall;
  return result;
}

/// Hand-built trace: one query per (name, client, arrival) triple.
serve::StubTrace make_trace(
    const std::vector<std::tuple<dns::Name, std::uint32_t, sim::SimTimeMs>>&
        entries) {
  serve::StubTrace trace;
  std::uint32_t id = 0;
  for (const auto& [qname, client, arrival] : entries) {
    serve::StubQuery query;
    query.qname = qname;
    query.client = client;
    query.arrival_ms = arrival;
    query.id = id++;
    trace.queries.push_back(std::move(query));
  }
  trace.id_count = id;
  std::sort(trace.queries.begin(), trace.queries.end(),
            [](const serve::StubQuery& a, const serve::StubQuery& b) {
              if (a.arrival_ms != b.arrival_ms)
                return a.arrival_ms < b.arrival_ms;
              return a.id < b.id;
            });
  return trace;
}

bool has_code(const serve::ClientAnswer& answer, std::uint16_t code) {
  return std::find(answer.ede.begin(), answer.ede.end(), code) !=
         answer.ede.end();
}

serve::OutageSummary run_outage(const scan::Population& population,
                                const BenchConfig& config) {
  serve::OutageSummary summary;
  summary.p99_bound_ms = kOutageP99BoundMs;
  const auto fail = [&summary](const std::string& what) {
    if (summary.violations.size() < 8) summary.violations.push_back(what);
  };

  auto stack = make_stack(population, config, /*prefetch=*/false,
                          /*aggressive=*/true);
  // Targets: the first healthy domains (their provider pool answers) and
  // a typo label under each (validated NXDOMAIN material for EDE 19).
  std::vector<dns::Name> healthy, typos;
  for (const auto& domain : population.domains) {
    if (domain.category != scan::Category::Healthy) continue;
    healthy.push_back(dns::Name::of(domain.fqdn));
    typos.push_back(dns::Name::of(domain.fqdn).prefixed("nx1").take());
    if (healthy.size() >= 24) break;
  }
  if (healthy.size() < 8) {
    fail("population too small for the outage scenario");
    return summary;
  }

  // Warm phase: every target resolved once at trace start.
  std::vector<std::tuple<dns::Name, std::uint32_t, sim::SimTimeMs>> warm;
  std::uint32_t client = 0;
  for (const auto& name : healthy) {
    warm.emplace_back(name, client, sim::SimTimeMs{client} * 40);
    ++client;
  }
  for (const auto& name : typos) {
    warm.emplace_back(name, client, sim::SimTimeMs{client} * 40);
    ++client;
  }
  const auto warm_trace = make_trace(warm);
  const auto warm_answers = stack.frontend->serve(warm_trace);
  for (std::size_t i = 0; i < warm_answers.size(); ++i) {
    const auto& answer = warm_answers[i];
    if (answer.rcode != dns::RCode::NOERROR &&
        answer.rcode != dns::RCode::NXDOMAIN)
      fail("warm phase: rcode " +
           std::to_string(static_cast<int>(answer.rcode)) + " for " +
           warm_trace.queries[i].qname.to_string());
  }

  // Let every warmed record and denial proof expire (TTL 300, stale
  // window days), then take every healthy authority dark.
  stack.clock->advance(kServeTtl + 100);
  const sim::SimTime outage_start = stack.clock->now();
  const sim::SimTime outage_end = outage_start + 900;
  for (std::uint32_t slot = 0; slot < 256; ++slot) {
    stack.network->fail_between(
        stack.world->provider_address(scan::ServingPlan::Pool::Healthy, slot),
        outage_start, outage_end);
  }

  // Outage phase: three rounds over every target, distinct clients.
  std::vector<std::tuple<dns::Name, std::uint32_t, sim::SimTimeMs>> during;
  for (std::uint32_t round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < healthy.size(); ++i) {
      during.emplace_back(healthy[i], client++,
                          sim::SimTimeMs{round} * 60'000 + i * 500);
      during.emplace_back(typos[i], client++,
                          sim::SimTimeMs{round} * 60'000 + i * 500 + 250);
    }
  }
  const auto trace = make_trace(during);
  const auto answers = stack.frontend->serve(trace);
  summary.served = answers.size();
  std::set<std::uint32_t> ede3_clients, ede19_clients;
  for (std::size_t i = 0; i < answers.size(); ++i) {
    const auto& answer = answers[i];
    const bool is_typo = trace.queries[i].qname.label(0).substr(0, 2) == "nx";
    if (is_typo) {
      if (answer.rcode != dns::RCode::NXDOMAIN)
        fail("outage: typo target lost its NXDOMAIN");
      if (!has_code(answer, 19))
        fail("outage: stale NXDOMAIN served without EDE 19");
      ++summary.stale_nxdomains;
      ede19_clients.insert(answer.client);
    } else {
      if (answer.rcode != dns::RCode::NOERROR)
        fail("outage: warmed answer lost under outage");
      if (!has_code(answer, 3))
        fail("outage: stale answer served without EDE 3");
      ++summary.stale_answers;
      ede3_clients.insert(answer.client);
    }
  }
  summary.ede3_clients = ede3_clients.size();
  summary.ede19_clients = ede19_clients.size();
  summary.latency = serve::summarize_latency(answers);
  if (summary.latency.p99 > kOutageP99BoundMs)
    fail("outage: p99 exceeded the bound");

  // Recovery: outage window closes, fresh resolutions, no stale codes.
  stack.clock->set(outage_end + 100);
  std::vector<std::tuple<dns::Name, std::uint32_t, sim::SimTimeMs>> after;
  for (std::size_t i = 0; i < healthy.size(); ++i) {
    after.emplace_back(healthy[i], client++, sim::SimTimeMs{i} * 500);
    after.emplace_back(typos[i], client++, sim::SimTimeMs{i} * 500 + 250);
  }
  const auto recovery_trace = make_trace(after);
  const auto recovered = stack.frontend->serve(recovery_trace);
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    const auto& answer = recovered[i];
    if (has_code(answer, 3) || has_code(answer, 19))
      fail("recovery: stale EDE survived the outage window");
    const bool is_typo =
        recovery_trace.queries[i].qname.label(0).substr(0, 2) == "nx";
    if (answer.rcode !=
        (is_typo ? dns::RCode::NXDOMAIN : dns::RCode::NOERROR))
      fail("recovery: wrong rcode after the outage cleared");
  }
  return summary;
}

std::string measurement_json(const BenchConfig& config,
                             std::size_t trace_queries, double wall_seconds,
                             double qps) {
  std::ostringstream out;
  out << "{\n  \"benchmarks\": [\n    {\n"
      << "      \"name\": \"serve_qps/" << config.domains << "/clients:"
      << config.stub.clients << "/inflight:" << config.inflight << "\",\n"
      << "      \"domains\": " << config.domains << ",\n"
      << "      \"clients\": " << config.stub.clients << ",\n"
      << "      \"trace_queries\": " << trace_queries << ",\n"
      << "      \"wall_seconds\": " << wall_seconds << ",\n"
      << "      \"queries_per_second\": " << static_cast<std::uint64_t>(qps)
      << "\n    }\n  ]\n}\n";
  return out.str();
}

void parse_args(int argc, char** argv, BenchConfig& config) {
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() { return std::strtoull(argv[++i], nullptr, 10); };
    if (std::strcmp(argv[i], "--domains") == 0 && i + 1 < argc) {
      config.domains = next();
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      config.stub.clients = static_cast<std::uint32_t>(next());
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      config.stub.queries = static_cast<std::uint32_t>(next());
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      config.stub.duration_ms = next();
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      config.stub.seed = next();
    } else if (std::strcmp(argv[i], "--inflight") == 0 && i + 1 < argc) {
      config.inflight = std::max<std::size_t>(1, next());
    } else if (std::strcmp(argv[i], "--wave-ms") == 0 && i + 1 < argc) {
      config.wave_ms = std::max<sim::SimTimeMs>(1, next());
    } else if (std::strcmp(argv[i], "--nx-fraction") == 0 && i + 1 < argc) {
      config.stub.nxdomain_fraction = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--no-prefetch") == 0) {
      config.prefetch = false;
    } else if (std::strcmp(argv[i], "--no-aggressive") == 0) {
      config.aggressive = false;
    } else if (std::strcmp(argv[i], "--no-controls") == 0) {
      config.controls = false;
    } else if (std::strcmp(argv[i], "--no-outage") == 0) {
      config.outage = false;
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      config.report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      config.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      std::exit(2);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  config.stub.clients = 1'000'000;
  config.stub.queries = 40'000;
  config.stub.duration_ms = 1'200'000;  // 20 virtual minutes, 4 TTL cycles
  parse_args(argc, argv, config);

  scan::PopulationConfig population_config;
  population_config.total_domains = config.domains;
  population_config.seed = config.stub.seed;
  std::printf("generating %zu-domain world, %u stub clients, %u queries "
              "(seed %llu)...\n",
              config.domains, config.stub.clients, config.stub.queries,
              static_cast<unsigned long long>(config.stub.seed));
  const auto population = scan::generate_population(population_config);
  const auto trace = serve::generate_stub_trace(population, config.stub);

  serve::ServeReportDoc doc;
  doc.stub = config.stub;
  doc.inflight = config.inflight;
  doc.wave_ms = config.wave_ms;

  const std::string main_label =
      (config.prefetch && config.aggressive) ? "full"
      : !config.prefetch                     ? "no_prefetch"
                                             : "no_aggressive";
  std::printf("serving %zu trace queries [%s]...\n", trace.queries.size(),
              main_label.c_str());
  const auto main_pass = run_pass(main_label, population, trace, config,
                                  config.prefetch, config.aggressive);
  doc.runs.push_back(main_pass.summary);

  if (config.controls && config.prefetch && config.aggressive) {
    std::printf("control run [no_prefetch]...\n");
    doc.runs.push_back(run_pass("no_prefetch", population, trace, config,
                                false, true)
                           .summary);
    std::printf("control run [no_aggressive]...\n");
    doc.runs.push_back(run_pass("no_aggressive", population, trace, config,
                                true, false)
                           .summary);
  }

  if (config.outage) {
    std::printf("serve-stale outage scenario...\n");
    doc.outage = run_outage(population, config);
  }

  std::fputs(serve::render_serve_text(doc).c_str(), stdout);

  const double qps = main_pass.wall_seconds > 0
                         ? static_cast<double>(trace.queries.size()) /
                               main_pass.wall_seconds
                         : 0.0;
  std::printf("throughput            : %.0f queries/s end-to-end (%.2f s "
              "wall for the %s pass)\n",
              qps, main_pass.wall_seconds, main_label.c_str());

  if (!config.report_path.empty()) {
    if (!scan::write_file(config.report_path, serve::render_serve_json(doc)))
      return 1;
    std::printf("report written to %s\n", config.report_path.c_str());
  }
  if (!config.json_path.empty()) {
    if (!scan::write_file(config.json_path,
                          measurement_json(config, trace.queries.size(),
                                           main_pass.wall_seconds, qps)))
      return 1;
    std::printf("measurement written to %s\n", config.json_path.c_str());
  }

  if (doc.outage && !doc.outage->violations.empty()) {
    for (const auto& violation : doc.outage->violations)
      std::fprintf(stderr, "OUTAGE INVARIANT VIOLATED: %s\n",
                   violation.c_str());
    return 1;
  }
  return 0;
}
