// E4 — regenerates the paper's §4.2: scan a synthetic registered-domain
// population through the Cloudflare-profile resolver and report the
// per-INFO-CODE domain counts (with scaled-up equivalents next to the
// paper's published numbers).
//
// Usage: sec42_wild_scan [total_domains] [seed]
// Default 303'000 domains = 1/1000 of the paper's 303 M.
#include <cstdio>
#include <cstdlib>

#include "scan/export.hpp"
#include "scan/report.hpp"

int main(int argc, char** argv) {
  ede::scan::PopulationConfig config;
  if (argc > 1) config.total_domains = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) config.seed = std::strtoull(argv[2], nullptr, 10);

  std::printf("generating population of %zu domains (seed %llu)...\n",
              config.total_domains,
              static_cast<unsigned long long>(config.seed));
  const auto population = ede::scan::generate_population(config);

  auto clock = std::make_shared<ede::sim::Clock>();
  auto network = std::make_shared<ede::sim::Network>(clock);
  ede::scan::ScanWorld world(network, population);

  auto resolver = world.make_resolver(ede::resolver::profile_cloudflare());
  world.prewarm(resolver);

  std::printf("scanning %zu domains through %s...\n",
              population.domains.size(), resolver.profile().name.c_str());
  ede::scan::Scanner scanner;
  const auto result = scanner.run(resolver, population);

  std::fputs(ede::scan::render_section42(result, population).c_str(), stdout);
  if (ede::scan::write_file("sec42_codes.csv",
                            ede::scan::section42_csv(result, population))) {
    std::printf("\nper-code counts written to sec42_codes.csv\n");
  }
  std::printf("\nscan rate            : %.0f domains/s (%llu upstream queries"
              ", %.1f s)\n",
              result.queries_per_second(),
              static_cast<unsigned long long>(result.upstream_queries),
              result.wall_seconds);
  std::printf("dead nameservers      : %zu distinct addresses (paper: 293k "
              "unique NS; scaled ~293)\n",
              world.dead_provider_count());
  const auto& infra = resolver.infra().stats();
  std::printf("infra cache           : %llu held down, %llu probes avoided, "
              "%zu entries (retry: %u ms initial, x%.1f backoff, %d/server)\n",
              static_cast<unsigned long long>(infra.holddowns_started),
              static_cast<unsigned long long>(infra.holddown_skips),
              resolver.infra().size(), resolver.retry_policy().initial_timeout_ms,
              resolver.retry_policy().backoff_factor,
              resolver.retry_policy().attempts_per_server);
  return 0;
}
