// E4 — regenerates the paper's §4.2: scan a synthetic registered-domain
// population through the Cloudflare-profile resolver and report the
// per-INFO-CODE domain counts (with scaled-up equivalents next to the
// paper's published numbers).
//
// Usage: sec42_wild_scan [total_domains] [seed] [--shards N] [--json FILE]
//                        [--inflight N]
// Default 303'000 domains = 1/1000 of the paper's 303 M, sharded across
// one worker per hardware thread (each with its own simulated network and
// resolver stack; see src/scan/parallel.hpp). --json writes a
// perf_baseline_scan.json-shaped measurement document that
// tools/perf_smoke.py --scan gates against the committed baseline.
//
// --inflight N turns the per-link latency model ON and multiplexes up to
// N resolutions per worker over the async engine (resolve_many): the
// virtual-time scan rate (domains per *simulated* second) is then the
// latency-bound throughput figure, and N=1 is the serial baseline it is
// compared against. Aggregate counts are invariant under N at a fixed
// seed (asserted by tests/test_async_core.cpp).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "scan/export.hpp"
#include "scan/report.hpp"

namespace {

/// Shared bench argv shape: positional [total_domains] [seed] plus
/// optional --shards N / --json FILE / --inflight N anywhere.
void parse_scan_args(int argc, char** argv, ede::scan::PopulationConfig& config,
                     std::size_t& shards, std::string& json_path,
                     std::size_t& inflight) {
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--inflight") == 0 && i + 1 < argc) {
      inflight = std::strtoull(argv[++i], nullptr, 10);
    } else if (positional == 0) {
      config.total_domains = std::strtoull(argv[i], nullptr, 10);
      ++positional;
    } else if (positional == 1) {
      config.seed = std::strtoull(argv[i], nullptr, 10);
      ++positional;
    }
  }
}

std::string measurement_json(const ede::scan::ParallelScanResult& scan,
                             std::size_t total_domains, std::size_t shards,
                             std::size_t inflight) {
  const auto& h = scan.merged.hardening;
  std::ostringstream out;
  out << "{\n  \"benchmarks\": [\n    {\n"
      << "      \"name\": \"sec42_wild_scan/" << total_domains
      << "/shards:" << shards;
  if (inflight > 0) out << "/inflight:" << inflight;
  out << "\",\n"
      << "      \"total_domains\": " << total_domains << ",\n"
      << "      \"shards\": " << shards << ",\n";
  if (inflight > 0) {
    out << "      \"inflight\": " << inflight << ",\n"
        << "      \"max_in_flight\": " << scan.merged.max_in_flight << ",\n"
        << "      \"sim_seconds\": " << scan.merged.sim_seconds << ",\n"
        << "      \"domains_per_sim_second\": "
        << static_cast<std::uint64_t>(
               scan.merged.sim_seconds > 0
                   ? static_cast<double>(total_domains) /
                         scan.merged.sim_seconds
                   : 0.0)
        << ",\n";
  }
  out << "      \"wall_seconds_end_to_end\": " << scan.wall_seconds << ",\n"
      << "      \"domains_per_second\": "
      << static_cast<std::uint64_t>(scan.merged_qps()) << ",\n"
      << "      \"hardening\": {\"rejected_qid_mismatch\": "
      << h.rejected_qid_mismatch
      << ", \"rejected_oversize\": " << h.rejected_oversize
      << ", \"scrubbed_records\": " << h.scrubbed_records << "}\n"
      << "    }\n  ]\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  ede::scan::PopulationConfig config;
  std::size_t shards = 0;  // 0 = hardware_concurrency
  std::string json_path;
  std::size_t inflight = 0;  // 0 = classic serial scan, latency model off
  parse_scan_args(argc, argv, config, shards, json_path, inflight);

  std::printf("generating population of %zu domains (seed %llu)...\n",
              config.total_domains,
              static_cast<unsigned long long>(config.seed));
  const auto population = ede::scan::generate_population(config);

  ede::scan::ParallelScanOptions options;
  options.shards = shards;
  if (inflight > 0) {
    // Latency-bound mode: RTTs and retry timers cost virtual time, and up
    // to `inflight` resolutions per worker overlap those waits.
    ede::sim::LatencyModel latency;
    latency.enabled = true;
    options.latency = latency;
    options.scanner.inflight = inflight;
  }
  const auto profile = ede::resolver::profile_cloudflare();
  std::printf("scanning %zu domains through %s across %zu shard(s)...\n",
              population.domains.size(), profile.name.c_str(),
              ede::scan::plan_shards(population.domains.size(), shards,
                                     options.base_seed)
                  .size());
  const auto scan = ede::scan::run_parallel_scan(population, profile, options);
  const auto& result = scan.merged;

  std::fputs(ede::scan::render_section42(result, population).c_str(), stdout);
  if (ede::scan::write_file("sec42_codes.csv",
                            ede::scan::section42_csv(result, population))) {
    std::printf("\nper-code counts written to sec42_codes.csv\n");
  }
  std::printf("\n%s", ede::scan::render_shard_summary(scan).c_str());
  std::printf("\nscan rate            : %.0f domains/s end-to-end (%llu "
              "upstream queries, %.1f s)\n",
              scan.merged_qps(),
              static_cast<unsigned long long>(result.upstream_queries),
              scan.wall_seconds);
  std::printf("dead nameservers      : %zu distinct addresses (paper: 293k "
              "unique NS; scaled ~293)\n",
              ede::scan::dead_provider_count(population));
  std::printf("infra cache           : %llu held down, %llu probes avoided "
              "(retry: %u ms initial, x%.1f backoff, %d/server)\n",
              static_cast<unsigned long long>(
                  result.transport.holddowns_started),
              static_cast<unsigned long long>(result.transport.holddown_skips),
              profile.retry.initial_timeout_ms, profile.retry.backoff_factor,
              profile.retry.attempts_per_server);
  if (inflight > 0) {
    const double sim_rate =
        result.sim_seconds > 0
            ? static_cast<double>(result.total_domains) / result.sim_seconds
            : 0.0;
    std::printf("async engine          : inflight %zu, peak %zu in flight, "
                "%.1f sim-s, %.0f domains/sim-s\n",
                inflight, result.max_in_flight, result.sim_seconds, sim_rate);
  }
  if (!json_path.empty()) {
    const auto effective_shards =
        ede::scan::plan_shards(population.domains.size(), shards,
                               options.base_seed)
            .size();
    if (ede::scan::write_file(
            json_path, measurement_json(scan, population.domains.size(),
                                        effective_shards, inflight))) {
      std::printf("measurement written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
