// Extension experiment: the paper ran its 303 M-domain scan only through
// Cloudflare DNS ("the most specific implementation"). What would each of
// the seven systems — and the idealized reference mapping — have reported
// over the same population? This quantifies how much of the wild-scan
// signal depends on the vantage resolver's EDE implementation.
//
// Usage: whatif_scan_vendors [total_domains] [seed]
#include <cstdio>
#include <cstdlib>

#include "scan/report.hpp"

int main(int argc, char** argv) {
  ede::scan::PopulationConfig config;
  config.total_domains = 30'000;
  if (argc > 1) config.total_domains = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) config.seed = std::strtoull(argv[2], nullptr, 10);

  const auto population = ede::scan::generate_population(config);
  auto network = std::make_shared<ede::sim::Network>(
      std::make_shared<ede::sim::Clock>());
  ede::scan::ScanWorld world(network, population);

  std::printf("Scanning the same %zu-domain population through every "
              "vendor profile\n\n",
              population.domains.size());
  std::printf("%-28s %10s %10s %8s %8s %8s %8s\n", "vantage resolver",
              "with-EDE", "SERVFAIL", "EDE22", "EDE23", "EDE10", "codes");

  auto profiles = ede::resolver::all_profiles();
  profiles.push_back(ede::resolver::profile_reference());

  for (const auto& profile : profiles) {
    auto resolver = world.make_resolver(profile);
    world.prewarm(resolver);
    const auto result = ede::scan::Scanner{}.run(resolver, population);
    const auto count = [&](std::uint16_t code) -> std::size_t {
      const auto it = result.per_code.find(code);
      return it == result.per_code.end() ? 0 : it->second.domains;
    };
    std::printf("%-28s %10zu %10zu %8zu %8zu %8zu %8zu\n",
                profile.name.c_str(), result.domains_with_ede,
                result.servfail_domains, count(22), count(23), count(10),
                result.per_code.size());
  }

  std::printf(
      "\nreading: every vantage sees the same SERVFAIL count (the failures "
      "are real),\nbut only Cloudflare-grade EDE support *explains* them — "
      "the paper's motivation for\nchoosing Cloudflare, reproduced. The "
      "reference mapping shows the ceiling.\n");
  return 0;
}
