// E2 — regenerates the paper's Table 2 (the 63 testbed subdomains grouped
// by misconfiguration type) and the Table 3 per-subdomain configuration
// details, straight from the built testbed, with a per-zone inventory
// proving each zone actually exhibits its intended defect class.
#include <cstdio>

#include "testbed/testbed.hpp"

int main() {
  auto network = std::make_shared<ede::sim::Network>(
      std::make_shared<ede::sim::Clock>());
  ede::testbed::Testbed testbed(network);

  std::printf("Table 2 — testbed subdomains grouped by (mis)configuration "
              "type\n\n");
  for (int group = 1; group <= 8; ++group) {
    std::printf("%d. %s\n   ", group,
                ede::testbed::group_name(group).c_str());
    bool first = true;
    int count = 0;
    for (const auto& spec : testbed.cases()) {
      if (spec.group != group) continue;
      std::printf("%s%s", first ? "" : ", ", spec.label.c_str());
      first = false;
      ++count;
    }
    std::printf("   (%d subdomains)\n", count);
  }

  std::printf("\nTable 3 — per-subdomain configuration and zone "
              "inventory\n\n");
  std::printf("%-26s %-6s %-7s %-8s %s\n", "subdomain", "signed", "records",
              "queried", "description");
  for (const auto& spec : testbed.cases()) {
    const auto zone = testbed.child_zone(spec.label);
    std::printf("%-26s %-6s %-7zu %-8s %s\n", spec.label.c_str(),
                spec.signed_zone ? "yes" : "no",
                zone ? zone->record_count() : 0,
                spec.query_nonexistent ? "nxd" : "apex",
                spec.description.c_str());
  }

  std::printf("\ntotal subdomains: %zu (paper: 63)\n",
              testbed.cases().size());
  return testbed.cases().size() == 63 ? 0 : 1;
}
